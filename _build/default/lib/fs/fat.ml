type dir = { dname : string; head : int; lock : O2_runtime.Spinlock.t }

type t = {
  img : Fat_image.t;
  mem : O2_simcore.Memsys.t;
  root_ : dir;
  by_name : (string, dir) Hashtbl.t;
  mutable created : dir list;  (* reverse creation order, root excluded *)
  mutable compare_cycles_ : int;
}

let format mem ~label ?(cluster_bytes = 4096) ~clusters () =
  let img = Fat_image.create mem ~label ~cluster_bytes ~total_clusters:clusters in
  let root_head =
    match Fat_image.alloc_cluster img ~prev:None with
    | Some c -> c
    | None -> invalid_arg "Fat.format: volume too small for a root directory"
  in
  let root_ =
    {
      dname = "/";
      head = root_head;
      lock = O2_runtime.Spinlock.create mem ~name:(label ^ ":lock:/");
    }
  in
  {
    img;
    mem;
    root_;
    by_name = Hashtbl.create 64;
    created = [];
    compare_cycles_ = 2;
  }

let image t = t.img
let root t = t.root_
let compare_cycles t = t.compare_cycles_

let set_compare_cycles t c =
  if c < 0 then invalid_arg "Fat.set_compare_cycles";
  t.compare_cycles_ <- c

let child_path parent name =
  if parent = "/" then "/" ^ name else parent ^ "/" ^ name

let mkdir_in t parent name =
  match Fat_name.to_83 name with
  | Error e -> Error e
  | Ok name83 -> (
      let path = child_path parent.dname name in
      if Hashtbl.mem t.by_name path then Error ("directory exists: " ^ path)
      else
        match Fat_image.alloc_cluster t.img ~prev:None with
        | None -> Error "volume full"
        | Some head -> (
            let entry =
              {
                Fat_types.name = name83;
                attr = Fat_types.attr_directory;
                first_cluster = head;
                size = 0;
              }
            in
            match Fat_dir.add t.img ~head:parent.head entry with
            | Error e ->
                Fat_image.free_chain t.img head;
                Error e
            | Ok () ->
                let d =
                  {
                    dname = path;
                    head;
                    lock =
                      O2_runtime.Spinlock.create t.mem ~name:("lock:" ^ path);
                  }
                in
                Hashtbl.add t.by_name path d;
                t.created <- d :: t.created;
                Ok d))

let mkdir t name = mkdir_in t t.root_ name

let find_dir t name =
  if name = "/" || name = "" then Some t.root_
  else
    match Hashtbl.find_opt t.by_name name with
    | Some _ as d -> d
    | None ->
        if String.length name > 0 && name.[0] <> '/' then
          Hashtbl.find_opt t.by_name ("/" ^ name)
        else None

let parent_path path =
  match String.rindex_opt path '/' with
  | None | Some 0 -> "/"
  | Some i -> String.sub path 0 i

let parent t d = if d.dname = "/" then None else find_dir t (parent_path d.dname)

(* Split "/a/./../b" into live components, resolving dots against the
   directory-handle registry. *)
let walk_components t path =
  let parts = List.filter (fun s -> s <> "" && s <> ".") (String.split_on_char '/' path) in
  let rec go dir = function
    | [] -> Some (`Dir dir)
    | ".." :: rest -> go (Option.value ~default:t.root_ (parent t dir)) rest
    | [ last ] -> Some (`Last (dir, last))
    | comp :: rest -> (
        match find_dir t (child_path dir.dname comp) with
        | Some sub -> go sub rest
        | None -> None)
  in
  go t.root_ parts

let classify t dir entry name =
  if entry.Fat_types.attr land Fat_types.attr_directory <> 0 then
    match find_dir t (child_path dir.dname name) with
    | Some sub -> Some (`Dir sub)
    | None -> None
  else Some (`File entry)

let resolve t path =
  match walk_components t path with
  | None -> None
  | Some (`Dir d) -> Some (`Dir d)
  | Some (`Last (dir, name)) -> (
      match Fat_name.to_83 name with
      | Error _ -> None
      | Ok name83 -> (
          match Fat_dir.find t.img ~head:dir.head ~name83 with
          | None -> None
          | Some entry -> classify t dir entry name))

let resolve_sim t ?(locked = true) path =
  (* like {!resolve} but every component scan runs through the simulated
     memory system; intermediate components cost a locked scan too *)
  let scan_dir dir name83 =
    if locked then begin
      O2_runtime.Api.lock dir.lock;
      let r =
        Fat_dir.lookup_sim t.img ~head:dir.head ~name83
          ~compare_cycles:t.compare_cycles_
      in
      O2_runtime.Api.unlock dir.lock;
      r
    end
    else
      Fat_dir.lookup_sim t.img ~head:dir.head ~name83
        ~compare_cycles:t.compare_cycles_
  in
  let parts =
    List.filter (fun s -> s <> "" && s <> ".") (String.split_on_char '/' path)
  in
  let rec go dir = function
    | [] -> Some (`Dir dir)
    | ".." :: rest -> go (Option.value ~default:t.root_ (parent t dir)) rest
    | comp :: rest -> (
        match Fat_name.to_83 comp with
        | Error _ -> None
        | Ok name83 -> (
            match scan_dir dir name83 with
            | None -> None
            | Some entry -> (
                match classify t dir entry comp with
                | Some (`Dir sub) -> if rest = [] then Some (`Dir sub) else go sub rest
                | Some (`File _) as file -> if rest = [] then file else None
                | None -> None)))
  in
  go t.root_ parts

let mkdir_path t path =
  let parts =
    List.filter (fun s -> s <> "" && s <> ".") (String.split_on_char '/' path)
  in
  if parts = [] then Error "mkdir_path: empty path"
  else begin
    let rec go dir = function
      | [] -> Ok dir
      | comp :: rest -> (
          match find_dir t (child_path dir.dname comp) with
          | Some sub -> go sub rest
          | None -> (
              match mkdir_in t dir comp with
              | Ok sub -> go sub rest
              | Error e -> Error e))
    in
    go t.root_ parts
  end
let dirs t = List.rev t.created

let add_file t d ~name ~size =
  match Fat_name.to_83 name with
  | Error e -> Error e
  | Ok name83 ->
      Fat_dir.add t.img ~head:d.head
        {
          Fat_types.name = name83;
          attr = Fat_types.attr_archive;
          first_cluster = 0;
          size;
        }

let populate t d ~prefix ~count =
  (* Bulk append: names are fresh by construction, so skip per-entry
     duplicate scans (population of large volumes is O(n), not O(n^2)). *)
  let rec make i acc =
    if i < 0 then Ok acc
    else
      match Fat_name.to_83 (Printf.sprintf "%s%d.dat" prefix i) with
      | Error e -> Error e
      | Ok name83 ->
          make (i - 1)
            ({
               Fat_types.name = name83;
               attr = Fat_types.attr_archive;
               first_cluster = 0;
               size = 0;
             }
            :: acc)
  in
  match make (count - 1) [] with
  | Error e -> Error e
  | Ok entries -> Fat_dir.append_bulk t.img ~head:d.head entries

let lookup t d name =
  match Fat_name.to_83 name with
  | Error _ -> None
  | Ok name83 ->
      Fat_dir.lookup_sim t.img ~head:d.head ~name83
        ~compare_cycles:t.compare_cycles_

let lookup_locked t d name =
  O2_runtime.Api.lock d.lock;
  let result = lookup t d name in
  O2_runtime.Api.unlock d.lock;
  result

let lookup_83 t d name83 =
  Fat_dir.lookup_sim t.img ~head:d.head ~name83
    ~compare_cycles:t.compare_cycles_

let lookup_locked_83 t d name83 =
  O2_runtime.Api.lock d.lock;
  let result = lookup_83 t d name83 in
  O2_runtime.Api.unlock d.lock;
  result

let lookup_host t d name =
  match Fat_name.to_83 name with
  | Error _ -> None
  | Ok name83 -> Fat_dir.find t.img ~head:d.head ~name83

let readdir t d = Fat_dir.list t.img ~head:d.head

let remove t d name =
  match Fat_name.to_83 name with
  | Error _ -> false
  | Ok name83 -> Fat_dir.remove t.img ~head:d.head ~name83

let dir_base_addr t d = Fat_image.cluster_addr t.img d.head

let dir_clusters t d = Fat_image.chain t.img d.head

let dir_bytes t d =
  List.length (dir_clusters t d) * Fat_image.cluster_bytes t.img
