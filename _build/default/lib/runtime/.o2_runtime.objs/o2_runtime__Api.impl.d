lib/runtime/api.ml: Effect Spinlock Thread
