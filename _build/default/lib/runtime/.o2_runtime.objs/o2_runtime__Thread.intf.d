lib/runtime/thread.mli: Format
