lib/runtime/event_queue.ml: Array
