lib/runtime/api.mli: Effect Spinlock Thread
