lib/runtime/engine.ml: Api Array Config Counters Effect Event_queue Machine O2_simcore Printf Queue Spinlock Thread
