lib/runtime/event_queue.mli:
