lib/runtime/spinlock.mli: Format O2_simcore Queue Thread
