lib/runtime/thread.ml: Format
