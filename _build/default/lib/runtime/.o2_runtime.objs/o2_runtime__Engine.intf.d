lib/runtime/engine.mli: O2_simcore Thread
