lib/runtime/spinlock.ml: Format O2_simcore Queue Thread
