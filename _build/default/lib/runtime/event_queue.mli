(** A minimum priority queue of timestamped events.

    Ties on time are broken by insertion order (FIFO), which makes the
    whole simulation deterministic: two events scheduled for the same cycle
    always fire in the order they were scheduled. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:int -> 'a -> unit
(** @raise Invalid_argument if [time < 0]. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event as [(time, payload)]. *)

val peek_time : 'a t -> int option
val clear : 'a t -> unit

val check_heap_property : 'a t -> bool
(** For the property tests. *)
