(** The operations a simulated thread may perform.

    Workload code is written in direct style, like the paper's Figure 1
    pseudocode; each of these functions performs an OCaml effect that the
    {!Engine} interprets, charging virtual cycles and moving cache lines.
    They may only be called from inside a thread spawned with
    {!Engine.spawn}.

    @raise Effect.Unhandled if called outside a simulated thread. *)

type _ Effect.t +=
  | Read : { addr : int; len : int } -> int Effect.t
  | Write : { addr : int; len : int } -> int Effect.t
  | Compute : int -> unit Effect.t
  | Lock_acquire : Spinlock.t -> unit Effect.t
  | Lock_release : Spinlock.t -> unit Effect.t
  | Migrate_to : int -> unit Effect.t
  | Ship_to : int -> unit Effect.t
  | Yield : unit Effect.t
  | Self : Thread.t Effect.t
  | Now : int Effect.t

val read : addr:int -> len:int -> int
(** Load [len] bytes; returns the access's cost in cycles (callers usually
    ignore it — it is exposed for instrumentation). *)

val write : addr:int -> len:int -> int
(** Store [len] bytes (coherence write: invalidates remote copies). *)

val compute : int -> unit
(** Execute for the given number of cycles without touching memory. *)

val lock : Spinlock.t -> unit
(** Acquire a spin lock. Spinning occupies the calling core, exactly as a
    user-level spin lock does under cooperative threading. *)

val unlock : Spinlock.t -> unit
(** Release a spin lock owned by the calling thread.
    @raise Invalid_argument (via the engine) if not the owner. *)

val migrate_to : int -> unit
(** Move this thread to another core; costs the configured migration
    cycles end to end. A no-op if already there. *)

val ship_to : int -> unit
(** Move execution to another core by active message (paper Section 6.1):
    only an operation descriptor crosses the interconnect — no context
    save/restore, no stack, no destination polling — so it costs the
    machine's [amsg_*] cycles (≈240 on {!O2_simcore.Config.amd16}) instead
    of ≈2000. Semantically identical to {!migrate_to}. *)

val yield : unit -> unit
(** Let the next runnable thread on this core run. *)

val self : unit -> Thread.t
val current_core : unit -> int
val now : unit -> int
(** The calling core's virtual clock. *)
