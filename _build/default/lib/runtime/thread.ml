type state = Runnable | Spinning | Migrating | Finished

type t = {
  id : int;
  name : string;
  origin_core : int;
  mutable core : int;
  mutable state : state;
  mutable migrations : int;
}

let make ~id ~name ~core =
  { id; name; origin_core = core; core; state = Runnable; migrations = 0 }

let state_to_string = function
  | Runnable -> "runnable"
  | Spinning -> "spinning"
  | Migrating -> "migrating"
  | Finished -> "finished"

let pp ppf t =
  Format.fprintf ppf "thread %d (%s) on core %d [%s, %d migrations]" t.id
    t.name t.core (state_to_string t.state) t.migrations
