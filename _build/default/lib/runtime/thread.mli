(** A cooperative simulated thread.

    Mirrors CoreTime's threading model (Section 4, "Implementation"): each
    simulated core runs one pinned worker, and threads within it are
    cooperative — they only leave a core at explicit points (migration,
    yield, lock hand-off, termination). *)

type state =
  | Runnable  (** On some core's run queue or currently executing. *)
  | Spinning  (** Blocked acquiring a spin lock (occupies its core). *)
  | Migrating  (** Context in flight between cores. *)
  | Finished

type t = {
  id : int;
  name : string;
  origin_core : int;  (** The core the thread was spawned on. *)
  mutable core : int;  (** Where it is currently placed. *)
  mutable state : state;
  mutable migrations : int;  (** How many times it has migrated. *)
}

val make : id:int -> name:string -> core:int -> t
val state_to_string : state -> string
val pp : Format.formatter -> t -> unit
