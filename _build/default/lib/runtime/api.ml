type _ Effect.t +=
  | Read : { addr : int; len : int } -> int Effect.t
  | Write : { addr : int; len : int } -> int Effect.t
  | Compute : int -> unit Effect.t
  | Lock_acquire : Spinlock.t -> unit Effect.t
  | Lock_release : Spinlock.t -> unit Effect.t
  | Migrate_to : int -> unit Effect.t
  | Ship_to : int -> unit Effect.t
  | Yield : unit Effect.t
  | Self : Thread.t Effect.t
  | Now : int Effect.t

let read ~addr ~len = Effect.perform (Read { addr; len })
let write ~addr ~len = Effect.perform (Write { addr; len })
let compute cycles = if cycles > 0 then Effect.perform (Compute cycles)
let lock l = Effect.perform (Lock_acquire l)
let unlock l = Effect.perform (Lock_release l)
let migrate_to core = Effect.perform (Migrate_to core)
let ship_to core = Effect.perform (Ship_to core)
let yield () = Effect.perform Yield
let self () = Effect.perform Self
let current_core () = (self ()).Thread.core
let now () = Effect.perform Now
