(** Minimal CSV output (RFC-4180-style quoting), so experiment sweeps can
    be saved and replotted externally. *)

val escape : string -> string
val row_to_string : string list -> string
val to_string : header:string list -> string list list -> string
val write_file : path:string -> header:string list -> string list list -> unit

val of_series : Series.t list -> string
(** Wide format: first column x, one column per series label; missing
    points are empty cells. *)
