(** A named (x, y) series — one curve of a figure. *)

type point = { x : float; y : float }
type t = { label : string; points : point list }

val make : label:string -> (float * float) list -> t
val xs : t -> float list
val ys : t -> float list
val length : t -> int

val y_at : t -> float -> float option
(** Exact-x lookup. *)

val interpolate : t -> float -> float option
(** Linear interpolation between surrounding points; [None] outside the
    domain or on an empty series. Requires points sorted by x (as {!make}
    guarantees). *)

val ratio : num:t -> den:t -> t
(** Pointwise [num/den] at shared x values (label "num/den"); skips points
    where the denominator is 0. *)

val crossover : a:t -> b:t -> float option
(** Smallest shared x at which the sign of (a - b) differs from the
    previous shared x — where the curves cross. *)

val max_y : t -> point option
val pp : Format.formatter -> t -> unit
