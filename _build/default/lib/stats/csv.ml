let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let row_to_string cells = String.concat "," (List.map escape cells)

let to_string ~header rows =
  String.concat "\n" (List.map row_to_string (header :: rows)) ^ "\n"

let write_file ~path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~header rows))

let of_series series =
  let xs =
    List.concat_map Series.xs series |> List.sort_uniq compare
  in
  let header = "x" :: List.map (fun s -> s.Series.label) series in
  let rows =
    List.map
      (fun x ->
        Printf.sprintf "%g" x
        :: List.map
             (fun s ->
               match Series.y_at s x with
               | Some y -> Printf.sprintf "%g" y
               | None -> "")
             series)
      xs
  in
  to_string ~header rows
