lib/stats/table.mli:
