lib/stats/csv.mli: Series
