lib/stats/table.ml: Buffer List String
