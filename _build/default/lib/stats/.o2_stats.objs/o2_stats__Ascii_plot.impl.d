lib/stats/ascii_plot.ml: Array Buffer List Printf Series String
