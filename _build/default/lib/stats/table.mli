(** Fixed-width ASCII tables for the benchmark harness output. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_rule : t -> unit
(** A horizontal separator. *)

val render : t -> string
val print : t -> unit
val rows : t -> int
