let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@' |]

let render ?(width = 72) ?(height = 20) ?(x_label = "") ?(y_label = "")
    (series : Series.t list) =
  let all_points =
    List.concat_map (fun s -> s.Series.points) series
  in
  if all_points = [] then ""
  else begin
    let xmin, xmax, ymax =
      List.fold_left
        (fun (xmin, xmax, ymax) p ->
          ( min xmin p.Series.x,
            max xmax p.Series.x,
            max ymax p.Series.y ))
        (infinity, neg_infinity, neg_infinity)
        all_points
    in
    let ymin = 0.0 in
    let ymax = if ymax <= ymin then ymin +. 1.0 else ymax in
    let xspan = if xmax > xmin then xmax -. xmin else 1.0 in
    let canvas = Array.make_matrix height width ' ' in
    let col x =
      let c = int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1)) in
      max 0 (min (width - 1) c)
    in
    let row y =
      let r =
        int_of_float ((y -. ymin) /. (ymax -. ymin) *. float_of_int (height - 1))
      in
      height - 1 - max 0 (min (height - 1) r)
    in
    List.iteri
      (fun i s ->
        let g = glyphs.(i mod Array.length glyphs) in
        List.iter
          (fun p -> canvas.(row p.Series.y).(col p.Series.x) <- g)
          s.Series.points)
      series;
    let buf = Buffer.create ((width + 16) * (height + 4)) in
    if y_label <> "" then begin
      Buffer.add_string buf y_label;
      Buffer.add_char buf '\n'
    end;
    Array.iteri
      (fun r line ->
        let ylab =
          if r = 0 then Printf.sprintf "%10.0f |" ymax
          else if r = height - 1 then Printf.sprintf "%10.0f |" ymin
          else "           |"
        in
        Buffer.add_string buf ylab;
        Buffer.add_string buf (String.init width (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      canvas;
    Buffer.add_string buf ("           +" ^ String.make width '-' ^ "\n");
    Buffer.add_string buf
      (Printf.sprintf "           %-12g%*s\n" xmin (width - 10)
         (Printf.sprintf "%g" xmax));
    if x_label <> "" then
      Buffer.add_string buf (Printf.sprintf "%*s\n" ((width / 2) + 12) x_label);
    List.iteri
      (fun i s ->
        Buffer.add_string buf
          (Printf.sprintf "             %c = %s\n"
             glyphs.(i mod Array.length glyphs)
             s.Series.label))
      series;
    Buffer.contents buf
  end

let print ?width ?height ?x_label ?y_label series =
  print_string (render ?width ?height ?x_label ?y_label series)
