type align = Left | Right
type row = Cells of string list | Rule

type t = {
  headers : string list;
  aligns : align list;
  mutable rows_rev : row list;
}

let create ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { headers = List.map fst columns; aligns = List.map snd columns; rows_rev = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows_rev <- Cells cells :: t.rows_rev

let add_rule t = t.rows_rev <- Rule :: t.rows_rev

let rows t =
  List.length
    (List.filter (function Cells _ -> true | Rule -> false) t.rows_rev)

let render t =
  let rows = List.rev t.rows_rev in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row ->
            match row with
            | Rule -> w
            | Cells cells -> max w (String.length (List.nth cells i)))
          (String.length h) rows)
      t.headers
  in
  let pad align width s =
    let gap = width - String.length s in
    if gap <= 0 then s
    else
      match align with
      | Left -> s ^ String.make gap ' '
      | Right -> String.make gap ' ' ^ s
  in
  let buf = Buffer.create 1024 in
  let emit_cells cells =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (List.nth t.aligns i) (List.nth widths i) cell))
      cells;
    Buffer.add_char buf '\n'
  in
  let rule () =
    List.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_char buf '\n'
  in
  emit_cells t.headers;
  rule ();
  List.iter (function Cells c -> emit_cells c | Rule -> rule ()) rows;
  Buffer.contents buf

let print t = print_string (render t)
