type point = { x : float; y : float }
type t = { label : string; points : point list }

let make ~label pts =
  {
    label;
    points =
      List.map (fun (x, y) -> { x; y }) pts
      |> List.sort (fun a b -> compare a.x b.x);
  }

let xs t = List.map (fun p -> p.x) t.points
let ys t = List.map (fun p -> p.y) t.points
let length t = List.length t.points

let y_at t x =
  List.find_map (fun p -> if p.x = x then Some p.y else None) t.points

let interpolate t x =
  let rec go = function
    | [] | [ _ ] -> None
    | a :: (b :: _ as rest) ->
        if x < a.x then None
        else if x <= b.x then begin
          let frac = if b.x = a.x then 0.0 else (x -. a.x) /. (b.x -. a.x) in
          Some (a.y +. (frac *. (b.y -. a.y)))
        end
        else go rest
  in
  match t.points with
  | [] -> None
  | [ p ] -> if p.x = x then Some p.y else None
  | p :: _ when x = p.x -> Some p.y
  | points -> go points

let shared_points a b =
  List.filter_map
    (fun p ->
      match y_at b p.x with Some yb -> Some (p.x, p.y, yb) | None -> None)
    a.points

let ratio ~num ~den =
  let pts =
    List.filter_map
      (fun (x, yn, yd) -> if yd = 0.0 then None else Some (x, yn /. yd))
      (shared_points num den)
  in
  make ~label:(num.label ^ "/" ^ den.label) pts

let crossover ~a ~b =
  let shared = shared_points a b in
  let sign v = compare v 0.0 in
  let rec go prev = function
    | [] -> None
    | (x, ya, yb) :: rest ->
        let s = sign (ya -. yb) in
        if s <> 0 && prev <> 0 && s <> prev then Some x
        else go (if s = 0 then prev else s) rest
  in
  go 0 shared

let max_y t =
  List.fold_left
    (fun acc p ->
      match acc with Some m when m.y >= p.y -> acc | _ -> Some p)
    None t.points

let pp ppf t =
  Format.fprintf ppf "%s:" t.label;
  List.iter (fun p -> Format.fprintf ppf " (%g, %g)" p.x p.y) t.points
