(** Terminal line plots, so [bench/main.exe] can render each figure the
    way the paper prints it (y = throughput, x = total data size) without
    any plotting dependency. *)

val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  Series.t list ->
  string
(** Plot the series on one canvas; each series gets a distinct glyph
    (shown in the legend). Empty input renders an empty string. *)

val print :
  ?width:int -> ?height:int -> ?x_label:string -> ?y_label:string ->
  Series.t list -> unit
