type placement = First_fit | Least_loaded | Random_fit of int

type t = {
  enabled : bool;
  promote_threshold : float;
  promote_min_ops : int;
  ewma_alpha : float;
  ct_overhead : int;
  op_shipping : bool;
  migrate_back : bool;
  budget_fraction : float;
  placement : placement;
  rebalance : bool;
  rebalance_period : int;
  overload_busy : float;
  idle_avail : float;
  demote_idle_periods : int;
  max_moves_per_rebalance : int;
  evict_for_hotter : bool;
  replicate_read_only : bool;
  replicate_min_ops : int;
  clustering : bool;
  cluster_min_coaccess : int;
}

let default =
  {
    enabled = true;
    promote_threshold = 32.0;
    promote_min_ops = 4;
    ewma_alpha = 0.4;
    ct_overhead = 60;
    op_shipping = false;
    migrate_back = true;
    budget_fraction = 0.9;
    placement = First_fit;
    rebalance = true;
    rebalance_period = 2_000_000;
    overload_busy = 0.85;
    idle_avail = 0.15;
    demote_idle_periods = 2;
    max_moves_per_rebalance = 64;
    evict_for_hotter = false;
    replicate_read_only = false;
    replicate_min_ops = 64;
    clustering = false;
    cluster_min_coaccess = 8;
  }

let baseline = { default with enabled = false }
let with_enabled t enabled = { t with enabled }

let validate t =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  if t.promote_threshold < 0.0 then fail "promote_threshold < 0"
  else if t.ewma_alpha <= 0.0 || t.ewma_alpha > 1.0 then
    fail "ewma_alpha must be in (0, 1]"
  else if t.budget_fraction <= 0.0 || t.budget_fraction > 1.0 then
    fail "budget_fraction must be in (0, 1]"
  else if t.rebalance_period <= 0 then fail "rebalance_period <= 0"
  else if t.ct_overhead < 0 then fail "ct_overhead < 0"
  else if t.promote_min_ops < 1 then fail "promote_min_ops < 1"
  else Ok ()

let placement_to_string = function
  | First_fit -> "first-fit"
  | Least_loaded -> "least-loaded"
  | Random_fit seed -> Printf.sprintf "random(seed=%d)" seed

let pp ppf t =
  Format.fprintf ppf
    "coretime %s: promote>%.1f misses/op after %d ops, placement %s, \
     rebalance %s every %d cycles, migrate_back %b, replicate_ro %b, \
     clustering %b"
    (if t.enabled then "on" else "off")
    t.promote_threshold t.promote_min_ops
    (placement_to_string t.placement)
    (if t.rebalance then "on" else "off")
    t.rebalance_period t.migrate_back t.replicate_read_only t.clustering
