type obj = {
  base : int;
  size : int;
  name : string;
  mutable home : int option;
  mutable ewma_misses : float;
  mutable ops_total : int;
  mutable ops_period : int;
  mutable idle_periods : int;
  mutable writes : int;
  mutable replicated : bool;
  mutable owner_pid : int;
}

type t = {
  by_base : (int, obj) Hashtbl.t;
  used_ : int array;  (* bytes assigned per core *)
  budget_ : int;
  mutable order : obj list;  (* reverse registration order *)
}

let create ~cores ~budget_per_core =
  if cores <= 0 then invalid_arg "Object_table.create: cores";
  if budget_per_core <= 0 then invalid_arg "Object_table.create: budget";
  {
    by_base = Hashtbl.create 1024;
    used_ = Array.make cores 0;
    budget_ = budget_per_core;
    order = [];
  }

let register t ?(pid = 0) ~base ~size ~name () =
  if size <= 0 then invalid_arg "Object_table.register: size must be positive";
  if Hashtbl.mem t.by_base base then
    invalid_arg
      (Printf.sprintf "Object_table.register: duplicate object at %#x" base);
  let o =
    {
      base;
      size;
      name;
      home = None;
      ewma_misses = 0.0;
      ops_total = 0;
      ops_period = 0;
      idle_periods = 0;
      writes = 0;
      replicated = false;
      owner_pid = pid;
    }
  in
  Hashtbl.add t.by_base base o;
  t.order <- o :: t.order;
  o

let find t base = Hashtbl.find_opt t.by_base base

let find_exn t base =
  match find t base with
  | Some o -> o
  | None ->
      invalid_arg (Printf.sprintf "Object_table.find_exn: no object at %#x" base)

let objects t = List.rev t.order
let size t = Hashtbl.length t.by_base

let unassign t o =
  match o.home with
  | None -> ()
  | Some core ->
      t.used_.(core) <- t.used_.(core) - o.size;
      o.home <- None

let assign t o core =
  if core < 0 || core >= Array.length t.used_ then
    invalid_arg "Object_table.assign: core out of range";
  unassign t o;
  o.home <- Some core;
  t.used_.(core) <- t.used_.(core) + o.size

let budget t = t.budget_
let used t core = t.used_.(core)
let total_used t = Array.fold_left ( + ) 0 t.used_

let occupancy t =
  float_of_int (total_used t)
  /. float_of_int (t.budget_ * Array.length t.used_)
let free_space t core = t.budget_ - t.used_.(core)

let assigned t ~core =
  List.filter (fun o -> o.home = Some core) (objects t)

let assigned_count t =
  Hashtbl.fold (fun _ o acc -> if o.home <> None then acc + 1 else acc) t.by_base 0

let fits t ~core o = o.size <= free_space t core

let can_place t o = Array.exists (fun u -> u + o.size <= t.budget_) t.used_

let check_accounting t =
  let n = Array.length t.used_ in
  let recomputed = Array.make n 0 in
  Hashtbl.iter
    (fun _ o ->
      match o.home with
      | Some c -> recomputed.(c) <- recomputed.(c) + o.size
      | None -> ())
    t.by_base;
  let rec check c =
    if c >= n then Ok ()
    else if recomputed.(c) <> t.used_.(c) then
      Error
        (Printf.sprintf "core %d: accounted %d bytes, actual %d" c t.used_.(c)
           recomputed.(c))
    else check (c + 1)
  in
  check 0
