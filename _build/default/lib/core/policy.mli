(** Tunable policy for the CoreTime scheduler.

    {!default} reproduces the behaviour described in the paper's Section 4;
    {!baseline} turns CoreTime off entirely (the "without CoreTime"
    configuration of Figure 4); the remaining knobs drive the Section 6
    ablations. *)

type placement =
  | First_fit
      (** The paper's greedy first fit, in core order (the default). Can
          concentrate popular objects on low-numbered cores — the
          pathology the runtime monitor repairs. *)
  | Least_loaded
      (** First fit over cores ordered by free budget (ablation). *)
  | Random_fit of int  (** Random core with space (seeded); ablation. *)

type t = {
  enabled : bool;  (** False = annotations are free no-ops (baseline). *)
  promote_threshold : float;
      (** Promote an object to the table when its per-operation cache-miss
          EWMA exceeds this ("expensive to fetch"). *)
  promote_min_ops : int;
      (** Observe at least this many operations before promoting, so a
          single cold scan does not pin a cache-resident object. *)
  ewma_alpha : float;  (** Weight of the latest operation in the EWMA. *)
  ct_overhead : int;
      (** Cycles charged for the [ct_start] table lookup when enabled. *)
  op_shipping : bool;
      (** Carry operations to their objects by active message
          (Section 6.1) instead of full thread migration: ~240 cycles
          each way instead of ~2000 on the default machine. *)
  migrate_back : bool;
      (** Return the thread to the core it started on at [ct_end]. *)
  budget_fraction : float;
      (** Fraction of {!O2_simcore.Config.per_core_budget} the packer may
          fill. *)
  placement : placement;
  rebalance : bool;  (** Run the periodic monitor/rebalancer. *)
  rebalance_period : int;  (** Cycles between monitor runs. *)
  overload_busy : float;
      (** Busy(+spin) ratio above which a core is considered saturated. *)
  idle_avail : float;
      (** Idle ratio above which a core may receive moved objects. *)
  demote_idle_periods : int;
      (** Unassign an object untouched for this many monitor periods. *)
  max_moves_per_rebalance : int;
  evict_for_hotter : bool;
      (** Section 6.2 replacement policy for working sets larger than
          on-chip memory: each monitor period, displace cold assigned
          objects in favour of markedly hotter unassigned ones. *)
  replicate_read_only : bool;
      (** Section 6.2 tradeoff: leave hot read-only objects unassigned so
          the hardware replicates them. *)
  replicate_min_ops : int;
      (** Popularity (ops/period) above which a read-only object is
          left to replicate. *)
  clustering : bool;
      (** Section 6.2: co-locate objects frequently used by one
          operation. *)
  cluster_min_coaccess : int;
}

val default : t
val baseline : t

val with_enabled : t -> bool -> t
val validate : t -> (unit, string) result
val pp : Format.formatter -> t -> unit
