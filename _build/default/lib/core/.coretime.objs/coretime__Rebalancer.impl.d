lib/core/rebalancer.ml: Array Counters Fun List Machine O2_simcore Object_table Option Policy
