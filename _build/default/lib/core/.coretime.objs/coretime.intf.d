lib/core/coretime.mli: Cache_packing Clustering Format O2_runtime Object_table Ownership Policy Rebalancer
