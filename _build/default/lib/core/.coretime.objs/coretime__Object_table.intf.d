lib/core/object_table.mli:
