lib/core/ownership.ml: Format Hashtbl List
