lib/core/object_table.ml: Array Hashtbl List Printf
