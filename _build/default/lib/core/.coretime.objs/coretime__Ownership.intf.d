lib/core/ownership.mli: Format
