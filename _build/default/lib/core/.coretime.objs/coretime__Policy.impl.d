lib/core/policy.ml: Format Printf
