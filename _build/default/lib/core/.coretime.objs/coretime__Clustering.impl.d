lib/core/clustering.ml: Hashtbl List Object_table Option
