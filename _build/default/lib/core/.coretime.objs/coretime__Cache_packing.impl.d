lib/core/cache_packing.ml: Array Hashtbl List Policy
