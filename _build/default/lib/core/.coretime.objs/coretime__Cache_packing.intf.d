lib/core/cache_packing.mli: Policy
