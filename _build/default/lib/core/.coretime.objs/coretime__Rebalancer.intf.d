lib/core/rebalancer.mli: O2_simcore Object_table Policy
