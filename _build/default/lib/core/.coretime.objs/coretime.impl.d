lib/core/coretime.ml: Api Array Cache_packing Clustering Config Counters Engine Format Fun Hashtbl List Machine O2_runtime O2_simcore Object_table Option Ownership Policy Rebalancer String Thread
