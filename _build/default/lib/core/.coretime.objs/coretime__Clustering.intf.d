lib/core/clustering.mli: Object_table
