type acct = { mutable ops : int; mutable cycles : int }
type t = { table : (int, acct) Hashtbl.t; mutable total : int }

let create () = { table = Hashtbl.create 16; total = 0 }

let acct t pid =
  match Hashtbl.find_opt t.table pid with
  | Some a -> a
  | None ->
      let a = { ops = 0; cycles = 0 } in
      Hashtbl.add t.table pid a;
      a

let charge t ~pid ~cycles =
  let a = acct t pid in
  a.ops <- a.ops + 1;
  a.cycles <- a.cycles + cycles;
  t.total <- t.total + cycles

let ops t ~pid = match Hashtbl.find_opt t.table pid with Some a -> a.ops | None -> 0

let cycles t ~pid =
  match Hashtbl.find_opt t.table pid with Some a -> a.cycles | None -> 0

let total_cycles t = t.total

let share t ~pid =
  if t.total = 0 then 0.0
  else float_of_int (cycles t ~pid) /. float_of_int t.total

let pids t =
  Hashtbl.fold (fun pid _ acc -> pid :: acc) t.table [] |> List.sort compare

let pp ppf t =
  List.iter
    (fun pid ->
      Format.fprintf ppf "pid %d: %d ops, %d cycles (%.1f%%)@." pid
        (ops t ~pid) (cycles t ~pid)
        (100.0 *. share t ~pid))
    (pids t)
