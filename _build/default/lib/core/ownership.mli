(** Per-process accounting (paper Section 6.2): a system-wide O2 scheduler
    must know which process owns each object and its operations to
    implement priorities and fairness.

    CoreTime charges each completed operation's busy cycles to the owning
    process; schedulers and tests read the resulting shares. *)

type t

val create : unit -> t
val charge : t -> pid:int -> cycles:int -> unit
val ops : t -> pid:int -> int
val cycles : t -> pid:int -> int
val total_cycles : t -> int
val share : t -> pid:int -> float
(** Fraction of all charged cycles consumed by [pid] (0 if none charged). *)

val pids : t -> int list
val pp : Format.formatter -> t -> unit
