(** Object clustering (paper Section 6.2): when one operation uses two
    objects together, placing both in the same cache avoids a second
    migration.

    Co-accesses are observed from nested annotation regions
    ([ct_start a; ... ct_start b; ... ct_end; ct_end]); once a pair has
    been seen often enough, promotion prefers the partner's home core. *)

type t

val create : unit -> t

val note_coaccess : t -> int -> int -> unit
(** Record that the objects identified by these two base addresses were
    used by one operation (order-insensitive). *)

val coaccess_count : t -> int -> int -> int

val partners : t -> int -> (int * int) list
(** [(partner_base, count)] pairs for an object, most frequent first. *)

val preferred_core :
  t -> Object_table.t -> min_coaccess:int -> Object_table.obj -> int option
(** The home core of the most frequently co-accessed partner that is
    assigned and has room for this object, if any pair count reaches
    [min_coaccess]. *)

val pairs_tracked : t -> int
