(** CoreTime: the O2 scheduler, as a runtime library (paper Section 4).

    Application threads bracket each operation with {!ct_start} /
    {!ct_end}, passing the address that identifies the object being
    operated on (paper Figure 3). [ct_start] looks the object up in the
    object table; if it is assigned to another core the thread migrates
    there, bringing the operation to the object's cache. Between the
    annotations CoreTime counts cache misses (from the simulated hardware
    event counters) and attributes them to the object; objects that stay
    expensive to fetch are promoted into the table by greedy first-fit
    cache packing. A periodic monitor (the {!Rebalancer}) demotes stale
    objects and moves objects off saturated cores.

    With [Policy.baseline] the annotations cost nothing and never migrate:
    that is the paper's "without CoreTime" configuration — identical
    workload code, traditional one-thread-per-core scheduling. *)

(** The component modules, re-exported as part of the public API. *)

module Policy = Policy
module Object_table = Object_table
module Cache_packing = Cache_packing
module Clustering = Clustering
module Ownership = Ownership
module Rebalancer = Rebalancer

type t

type stats = {
  mutable promotions : int;
  mutable replications : int;
      (** Promotions skipped by the read-only replication policy. *)
  mutable op_migrations : int;
      (** ct_start migrations to an object's home core. *)
  mutable ops : int;  (** Annotated operations completed. *)
}

val create :
  ?policy:Policy.t -> O2_runtime.Engine.t -> unit -> t
(** [policy] defaults to {!Policy.default}. Installs the periodic monitor
    on the engine when rebalancing is enabled.
    @raise Invalid_argument if the policy fails {!Policy.validate}. *)

val engine : t -> O2_runtime.Engine.t
val policy : t -> Policy.t
val table : t -> Object_table.t
val clustering : t -> Clustering.t
val ownership : t -> Ownership.t
val rebalancer : t -> Rebalancer.t
val stats : t -> stats

val register :
  t -> ?pid:int -> base:int -> size:int -> name:string -> unit ->
  Object_table.obj
(** Tell CoreTime about an object (developers annotate; sizes come from
    the allocator). Unregistered addresses passed to {!ct_start} execute
    locally, untouched — the hardware manages them. *)

val ct_start : t -> ?write:bool -> int -> unit
(** Begin an operation on the object identified by this address. Must be
    called from inside a simulated thread; regions may nest (nesting
    feeds the clustering heuristic). [write] marks the operation as
    mutating for the read-only replication policy. *)

val ct_end : t -> unit
(** End the innermost operation: attribute the cache misses observed
    since its [ct_start] to the object, update its EWMA, charge the owner
    process, and migrate back if the operation migrated.
    @raise Invalid_argument if no operation is open for this thread. *)

val with_op : t -> ?write:bool -> int -> (unit -> 'a) -> 'a
(** [with_op t addr f] = [ct_start]; [f ()]; [ct_end] — exceptions from
    [f] are not handled (simulation code is not expected to raise). *)

val assignments : t -> (int * Object_table.obj list) list
(** Current table contents per core (cores with none omitted). *)

val pp_assignments : Format.formatter -> t -> unit
