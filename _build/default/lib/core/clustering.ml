type t = {
  counts : (int * int, int) Hashtbl.t;
  by_obj : (int, (int, int) Hashtbl.t) Hashtbl.t;
}

let create () = { counts = Hashtbl.create 256; by_obj = Hashtbl.create 256 }

let key a b = if a <= b then (a, b) else (b, a)

let bump tbl k =
  Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let partner_tbl t a =
  match Hashtbl.find_opt t.by_obj a with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 8 in
      Hashtbl.add t.by_obj a tbl;
      tbl

let note_coaccess t a b =
  if a <> b then begin
    bump t.counts (key a b);
    bump (partner_tbl t a) b;
    bump (partner_tbl t b) a
  end

let coaccess_count t a b =
  Option.value ~default:0 (Hashtbl.find_opt t.counts (key a b))

let partners t a =
  match Hashtbl.find_opt t.by_obj a with
  | None -> []
  | Some tbl ->
      Hashtbl.fold (fun b n acc -> (b, n) :: acc) tbl []
      |> List.sort (fun (b1, n1) (b2, n2) ->
             if n1 <> n2 then compare n2 n1 else compare b1 b2)

let preferred_core t table ~min_coaccess obj =
  let rec pick = function
    | [] -> None
    | (partner_base, n) :: rest ->
        if n < min_coaccess then None
        else begin
          match Object_table.find table partner_base with
          | Some partner -> (
              match partner.Object_table.home with
              | Some core when Object_table.fits table ~core obj -> Some core
              | Some _ | None -> pick rest)
          | None -> pick rest
        end
  in
  pick (partners t obj.Object_table.base)

let pairs_tracked t = Hashtbl.length t.counts
