(** CoreTime's object table (paper Section 4, "Interface"): registered
    objects keyed by the address that identifies them, their home-core
    assignment, and per-core cache-budget accounting.

    [ct_start(o)] resolves its address argument through {!find}; promotion
    and rebalancing mutate assignments through {!assign} / {!unassign},
    which maintain how many bytes are packed into each core's budget. *)

type obj = {
  base : int;  (** Identifying address (e.g. a directory's first cluster). *)
  size : int;  (** Bytes, as supplied at registration. *)
  name : string;
  mutable home : int option;  (** Assigned core, when in the table. *)
  mutable ewma_misses : float;  (** Per-op cache-miss EWMA. *)
  mutable ops_total : int;
  mutable ops_period : int;  (** Ops since the last monitor period. *)
  mutable idle_periods : int;  (** Consecutive periods with zero ops. *)
  mutable writes : int;  (** Write operations observed on it. *)
  mutable replicated : bool;
      (** The replication policy decided the hardware should manage this
          hot read-only object; promotion leaves it alone until it is
          written. *)
  mutable owner_pid : int;  (** Owning process (fairness accounting). *)
}

type t

val create : cores:int -> budget_per_core:int -> t

val register :
  t -> ?pid:int -> base:int -> size:int -> name:string -> unit -> obj
(** @raise Invalid_argument on duplicate base or non-positive size. *)

val find : t -> int -> obj option
(** Lookup by identifying address (exact base match, O(1) — the table
    lookup [ct_start] performs). *)

val find_exn : t -> int -> obj
val objects : t -> obj list
val size : t -> int

val assign : t -> obj -> int -> unit
(** Put [obj] in the table with the given home core (moving it if it was
    assigned elsewhere); updates budget accounting. *)

val unassign : t -> obj -> unit

val budget : t -> int
val used : t -> int -> int
(** Bytes currently assigned to a core. *)

val total_used : t -> int
val occupancy : t -> float
(** [total_used / (budget * cores)]: how full the table's cache budget is. *)

val free_space : t -> int -> int
val assigned : t -> core:int -> obj list
(** Objects homed on [core]. *)

val assigned_count : t -> int
(** Objects currently in the table. *)

val fits : t -> core:int -> obj -> bool

(** [can_place t o] is whether any core currently has budget for [o]. *)
val can_place : t -> obj -> bool
val check_accounting : t -> (unit, string) result
(** Budget-accounting invariant for the property tests. *)
