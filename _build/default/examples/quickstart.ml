(* Quickstart: the CoreTime API in one page.

   Build a simulated multicore, register a few objects, and run annotated
   operations from cooperative threads — the OCaml equivalent of the
   paper's Figure 3 pseudocode.

     dune exec examples/quickstart.exe *)

open O2_simcore
open O2_runtime

let () =
  (* 1. A machine: the paper's 16-core, 4-chip AMD system. *)
  let machine = Machine.create Config.amd16 in
  let engine = Engine.create machine in

  (* 2. CoreTime as a runtime library on top of it. *)
  let ct = Coretime.create ~policy:Coretime.Policy.default engine () in

  (* 3. Some objects: four 64 KB tables in simulated memory. Registering
     tells CoreTime the identifying address and the size; nothing is
     scheduled until operations on an object prove expensive. *)
  let mem = Machine.memory machine in
  let table_size = 64 * 1024 in
  let tables =
    Array.init 4 (fun i ->
        let ext =
          Memsys.alloc mem ~name:(Printf.sprintf "table%d" i) ~size:table_size
        in
        ignore
          (Coretime.register ct ~base:ext.Memsys.base ~size:table_size
             ~name:ext.Memsys.name ());
        ext.Memsys.base)
  in

  (* 4. Worker threads: each repeatedly scans a random table under a
     ct_start/ct_end annotation (compare the paper's Figure 3). *)
  let ncores = Engine.cores engine in
  for core = 0 to ncores - 1 do
    let rng = O2_workload.Rng.create ~seed:(0xC0DE + core) in
    ignore
      (Engine.spawn engine ~core ~name:(Printf.sprintf "worker%d" core)
         (fun () ->
           while true do
             let table = tables.(O2_workload.Rng.int rng ~bound:4) in
             Coretime.ct_start ct table;
             ignore (Api.read ~addr:table ~len:table_size);
             Api.compute 500;
             Coretime.ct_end ct
           done))
  done;

  (* 5. Run 10 ms of virtual time and look at what CoreTime did. *)
  Engine.run ~until:20_000_000 engine;
  let stats = Coretime.stats ct in
  Printf.printf "operations completed : %d\n" stats.Coretime.ops;
  Printf.printf "objects promoted     : %d\n" stats.Coretime.promotions;
  Printf.printf "operation migrations : %d\n" stats.Coretime.op_migrations;
  print_endline "object table:";
  Format.printf "%a" Coretime.pp_assignments ct;
  let ops_per_sec =
    float_of_int stats.Coretime.ops
    /. Machine.seconds_of_cycles machine (Engine.now engine)
  in
  Printf.printf "throughput           : %.0f ops/s\n" ops_per_sec
