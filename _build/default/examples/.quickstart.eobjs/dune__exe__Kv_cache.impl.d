examples/kv_cache.ml: Config Coretime Engine Kv_store List Machine O2_runtime O2_simcore O2_workload Printf Rng
