examples/oscillating_rebalance.ml: Config Coretime Dir_workload Machine O2_runtime O2_simcore O2_workload Phase Printf
