examples/oscillating_rebalance.mli:
