examples/webserver_lookup.mli:
