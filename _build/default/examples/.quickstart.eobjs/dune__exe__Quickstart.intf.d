examples/quickstart.mli:
