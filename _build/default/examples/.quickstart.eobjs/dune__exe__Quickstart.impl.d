examples/quickstart.ml: Api Array Config Coretime Engine Format Machine Memsys O2_runtime O2_simcore O2_workload Printf
