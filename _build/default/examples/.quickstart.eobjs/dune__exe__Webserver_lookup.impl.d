examples/webserver_lookup.ml: Array Config Coretime Dir_workload Machine O2_runtime O2_simcore O2_workload Printf Sys
