(* A key-value cache under O2 scheduling, with two tenant processes.

   Buckets are CoreTime objects owned by a process id (Section 6.2:
   a system-wide O2 scheduler must track which process owns an object to
   implement priorities and fairness). Tenant A runs a hot read-mostly
   working set; tenant B a cooler mixed one. The example reports
   throughput, where the buckets ended up, and each tenant's share of the
   machine as CoreTime accounts it.

     dune exec examples/kv_cache.exe *)

open O2_simcore
open O2_runtime
open O2_workload

let () =
  let machine = Machine.create Config.amd16 in
  let engine = Engine.create machine in
  (* bucket scans touch ~20-40 lines, so "expensive to fetch" is a lower
     bar than the 32 KB directory benchmark's *)
  let policy =
    { Coretime.Policy.default with Coretime.Policy.promote_threshold = 8.0 }
  in
  let ct = Coretime.create ~policy engine () in
  let tenant_a =
    Kv_store.create ct ~pid:1 ~name:"tenantA" ~buckets:256
      ~slots_per_bucket:2048 ()
  in
  let tenant_b =
    Kv_store.create ct ~pid:2 ~name:"tenantB" ~buckets:64
      ~slots_per_bucket:2048 ()
  in
  Printf.printf "tenant A: %d buckets, %d KB; tenant B: %d buckets, %d KB\n\n"
    (Kv_store.buckets tenant_a)
    (Kv_store.mem_bytes tenant_a / 1024)
    (Kv_store.buckets tenant_b)
    (Kv_store.mem_bytes tenant_b / 1024);
  (* preload both stores (host time, zero simulated cost would be wrong:
     puts run inside a loader thread so caches and stats start honest) *)
  ignore
    (Engine.spawn engine ~core:0 ~name:"loader" (fun () ->
         for k = 0 to 40_000 do
           ignore (Kv_store.put tenant_a ~key:k ~value:(k * 3))
         done;
         for k = 0 to 10_000 do
           ignore (Kv_store.put tenant_b ~key:k ~value:(k * 7))
         done));
  Engine.run engine;
  (* tenants: A on even cores (reads), B on odd cores (mixed) *)
  for core = 0 to Engine.cores engine - 1 do
    let rng = Rng.create ~seed:(7 + core) in
    let body () =
      while true do
        if core land 1 = 0 then
          ignore (Kv_store.get tenant_a ~key:(Rng.int rng ~bound:40_000))
        else if Rng.int rng ~bound:10 < 8 then
          ignore (Kv_store.get tenant_b ~key:(Rng.int rng ~bound:10_000))
        else
          ignore
            (Kv_store.put tenant_b ~key:(Rng.int rng ~bound:10_000)
               ~value:(Rng.int rng ~bound:1000))
      done
    in
    ignore (Engine.spawn engine ~core ~name:(Printf.sprintf "client%d" core) body)
  done;
  (* the loader consumed virtual time; measure 40 ms from *now* *)
  Engine.run ~until:(Engine.now engine + 80_000_000) engine;
  let stats = Coretime.stats ct in
  Printf.printf "operations: %d (%d migrations, %d promotions)\n"
    stats.Coretime.ops stats.Coretime.op_migrations stats.Coretime.promotions;
  let table = Coretime.table ct in
  let assigned = Coretime.Object_table.assigned_count table in
  Printf.printf "buckets scheduled into caches: %d of %d\n" assigned
    (Coretime.Object_table.size table);
  let own = Coretime.ownership ct in
  List.iter
    (fun pid ->
      Printf.printf "tenant %d: %d ops, %.1f%% of accounted core time\n" pid
        (Coretime.Ownership.ops own ~pid)
        (100.0 *. Coretime.Ownership.share own ~pid))
    (Coretime.Ownership.pids own)
