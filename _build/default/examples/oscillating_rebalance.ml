(* Watching the runtime monitor work (paper Section 4, Figure 4(b)).

   The active directory set oscillates between the full set and a
   sixteenth of it. Greedy first-fit packing had placed those few
   directories on the first cores, so each shrink initially saturates
   them; the monitor notices (busy cores + idle cores) and spreads the hot
   objects back out. This example prints a window-by-window trace of
   throughput and monitor actions.

     dune exec examples/oscillating_rebalance.exe *)

open O2_simcore
open O2_workload

let () =
  let machine = Machine.create Config.amd16 in
  let engine = O2_runtime.Engine.create machine in
  let ct = Coretime.create ~policy:Coretime.Policy.default engine () in
  let spec = Dir_workload.spec_for_data_kb ~kb:8192 () in
  let w = Dir_workload.build ct spec in
  Dir_workload.spawn_threads w;
  let period = 10_000_000 in
  Phase.oscillate_active engine w ~period ~divisor:16;
  Printf.printf
    "8 MB of directories; active set flips full <-> 1/16 every %.0f ms\n\n"
    (1000. *. Machine.seconds_of_cycles machine period);
  Printf.printf "%6s  %7s  %10s  %6s  %6s  %10s\n" "ms" "active" "kres/s"
    "moves" "demote" "assigned";
  let window = 2_000_000 in
  let prev_ops = ref 0 in
  let prev_moves = ref 0 and prev_demotions = ref 0 in
  for i = 1 to 50 do
    O2_runtime.Engine.run ~until:(i * window) engine;
    let ops = Dir_workload.lookups_done w in
    let rb = Coretime.Rebalancer.stats (Coretime.rebalancer ct) in
    let kres =
      float_of_int (ops - !prev_ops)
      /. Machine.seconds_of_cycles machine window /. 1000.
    in
    Printf.printf "%6.0f  %7d  %10.0f  %6d  %6d  %10d\n%!"
      (1000. *. Machine.seconds_of_cycles machine (i * window))
      (Dir_workload.active w) kres
      (rb.Coretime.Rebalancer.moves - !prev_moves)
      (rb.Coretime.Rebalancer.demotions - !prev_demotions)
      (Coretime.Object_table.assigned_count (Coretime.table ct));
    prev_ops := ops;
    prev_moves := rb.Coretime.Rebalancer.moves;
    prev_demotions := rb.Coretime.Rebalancer.demotions
  done
