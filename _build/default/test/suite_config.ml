open O2_simcore

let test_builtins_validate () =
  List.iter
    (fun cfg ->
      match Config.validate cfg with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s invalid: %s" cfg.Config.name e)
    [ Config.amd16; Config.small4; Config.future64 ]

let test_amd16_is_the_paper_machine () =
  let c = Config.amd16 in
  Alcotest.(check int) "16 cores" 16 (Config.cores c);
  Alcotest.(check int) "4 chips" 4 c.Config.chips;
  Alcotest.(check int) "L1 latency" 3 c.Config.l1_latency;
  Alcotest.(check int) "L2 latency" 14 c.Config.l2_latency;
  Alcotest.(check int) "L3 latency" 75 c.Config.l3_latency;
  Alcotest.(check int) "remote same chip" 127 c.Config.remote_same_chip;
  Alcotest.(check int) "migration is 2000 cycles" 2000 (Config.migration_cycles c);
  Alcotest.(check int) "16 MB of on-chip memory"
    (16 * 1024 * 1024)
    (Config.on_chip_capacity c);
  Alcotest.(check int) "1 MB per-core packing budget"
    (1024 * 1024)
    (Config.per_core_budget c)

let test_chip_of_core () =
  let c = Config.amd16 in
  Alcotest.(check int) "core 0 on chip 0" 0 (Config.chip_of_core c 0);
  Alcotest.(check int) "core 3 on chip 0" 0 (Config.chip_of_core c 3);
  Alcotest.(check int) "core 4 on chip 1" 1 (Config.chip_of_core c 4);
  Alcotest.(check int) "core 15 on chip 3" 3 (Config.chip_of_core c 15)

let test_rejects_bad_configs () =
  let is_err cfg = Result.is_error (Config.validate cfg) in
  Alcotest.(check bool) "no cores" true
    (is_err { Config.amd16 with Config.chips = 0 });
  Alcotest.(check bool) "line not power of two" true
    (is_err { Config.amd16 with Config.line_bytes = 48 });
  Alcotest.(check bool) "page smaller than line" true
    (is_err { Config.amd16 with Config.page_bytes = 32 });
  Alcotest.(check bool) "ragged cache size" true
    (is_err { Config.amd16 with Config.l2_bytes = 1000 });
  Alcotest.(check bool) "negative latency" true
    (is_err { Config.amd16 with Config.l3_latency = -1 });
  Alcotest.(check bool) "zero ghz" true
    (is_err { Config.amd16 with Config.ghz = 0.0 })

let test_topology_square () =
  let topo = Topology.create Config.amd16 in
  (* 4 chips on a 2x2 grid: 0 1 / 2 3 *)
  Alcotest.(check int) "self" 0 (Topology.hops topo 0 0);
  Alcotest.(check int) "adjacent" 1 (Topology.hops topo 0 1);
  Alcotest.(check int) "adjacent" 1 (Topology.hops topo 0 2);
  Alcotest.(check int) "diagonal" 2 (Topology.hops topo 0 3);
  Alcotest.(check int) "symmetric" (Topology.hops topo 3 1) (Topology.hops topo 1 3);
  Alcotest.(check int) "max hops" 2 (Topology.max_hops topo)

let test_topology_latencies () =
  let topo = Topology.create Config.amd16 in
  Alcotest.(check int) "same chip remote" 127
    (Topology.remote_cache_latency topo ~from_chip:0 ~to_chip:0);
  Alcotest.(check int) "one hop" 187
    (Topology.remote_cache_latency topo ~from_chip:0 ~to_chip:1);
  Alcotest.(check int) "two hops" 247
    (Topology.remote_cache_latency topo ~from_chip:0 ~to_chip:3);
  Alcotest.(check int) "distant dram latency component" (202 + 120)
    (Topology.dram_latency topo ~from_chip:0 ~home_chip:3)

let test_home_chip_interleave () =
  let topo = Topology.create Config.amd16 in
  let page = Config.amd16.Config.page_bytes in
  Alcotest.(check int) "page 0" 0 (Topology.home_chip topo ~addr:0);
  Alcotest.(check int) "page 1" 1 (Topology.home_chip topo ~addr:page);
  Alcotest.(check int) "page 5 wraps" 1 (Topology.home_chip topo ~addr:(5 * page));
  Alcotest.(check int) "same page same home" 0
    (Topology.home_chip topo ~addr:(page - 1))

let prop_hops_triangle =
  QCheck2.Test.make ~name:"topology hops satisfy triangle inequality" ~count:200
    QCheck2.Gen.(triple (int_bound 7) (int_bound 7) (int_bound 7))
    (fun (a, b, c) ->
      let topo = Topology.create Config.future64 in
      Topology.hops topo a c <= Topology.hops topo a b + Topology.hops topo b c)

let suite =
  [
    Alcotest.test_case "built-in configs validate" `Quick test_builtins_validate;
    Alcotest.test_case "amd16 matches Section 5" `Quick test_amd16_is_the_paper_machine;
    Alcotest.test_case "chip_of_core" `Quick test_chip_of_core;
    Alcotest.test_case "validate rejects bad configs" `Quick test_rejects_bad_configs;
    Alcotest.test_case "square interconnect hops" `Quick test_topology_square;
    Alcotest.test_case "interconnect latencies" `Quick test_topology_latencies;
    Alcotest.test_case "dram pages interleave across chips" `Quick test_home_chip_interleave;
    QCheck_alcotest.to_alcotest prop_hops_triangle;
  ]
