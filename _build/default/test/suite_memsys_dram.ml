open O2_simcore

let test_alloc_alignment () =
  let mem = Memsys.create ~line_bytes:64 () in
  let a = Memsys.alloc mem ~name:"a" ~size:10 in
  let b = Memsys.alloc mem ~name:"b" ~size:100 in
  Alcotest.(check int) "line aligned" 0 (a.Memsys.base mod 64);
  Alcotest.(check int) "rounded to whole lines" 64 a.Memsys.size;
  Alcotest.(check bool) "no overlap" true (b.Memsys.base >= a.Memsys.base + a.Memsys.size);
  Alcotest.(check int) "two extents" 2 (Memsys.size mem)

let test_object_at () =
  let mem = Memsys.create ~line_bytes:64 () in
  let a = Memsys.alloc mem ~name:"a" ~size:128 in
  let b = Memsys.alloc mem ~name:"b" ~size:64 in
  let get addr =
    Option.map (fun e -> e.Memsys.name) (Memsys.object_at mem ~addr)
  in
  Alcotest.(check (option string)) "first byte" (Some "a") (get a.Memsys.base);
  Alcotest.(check (option string)) "last byte" (Some "a")
    (get (a.Memsys.base + 127));
  Alcotest.(check (option string)) "next object" (Some "b") (get b.Memsys.base);
  Alcotest.(check (option string)) "before all" None (get 0);
  Alcotest.(check (option string)) "past end" None
    (get (b.Memsys.base + b.Memsys.size))

let test_find_and_lines () =
  let mem = Memsys.create ~line_bytes:64 () in
  let a = Memsys.alloc mem ~name:"a" ~size:130 in
  Alcotest.(check bool) "find by id" true (Memsys.find mem a.Memsys.id = Some a);
  Alcotest.(check int) "3 lines for 130 bytes" 3 (Memsys.lines_of mem a);
  Alcotest.check_raises "find_exn unknown"
    (Invalid_argument "Memsys.find_exn: no object 99") (fun () ->
      ignore (Memsys.find_exn mem 99))

let test_rejects_bad_alloc () =
  let mem = Memsys.create ~line_bytes:64 () in
  Alcotest.check_raises "zero size"
    (Invalid_argument "Memsys.alloc: size must be positive") (fun () ->
      ignore (Memsys.alloc mem ~name:"x" ~size:0))

let dram () =
  let cfg = Config.amd16 in
  (cfg, Dram.create cfg (Topology.create cfg))

let test_dram_idle_fetch () =
  let cfg, d = dram () in
  let cost = Dram.fetch d ~now:0 ~from_chip:0 ~home_chip:0 ~lines:1 in
  Alcotest.(check int) "latency + one service slot"
    (cfg.Config.dram_latency + cfg.Config.dram_service)
    cost

let test_dram_queueing () =
  let cfg, d = dram () in
  let c1 = Dram.fetch d ~now:0 ~from_chip:0 ~home_chip:0 ~lines:10 in
  (* second burst at the same instant queues behind the first *)
  let c2 = Dram.fetch d ~now:0 ~from_chip:0 ~home_chip:0 ~lines:10 in
  Alcotest.(check int) "first: latency + 10 slots"
    (cfg.Config.dram_latency + (10 * cfg.Config.dram_service))
    c1;
  Alcotest.(check int) "second waits for the first's slots"
    (c1 + (10 * cfg.Config.dram_service))
    c2;
  (* a different chip's controller is independent *)
  let c3 = Dram.fetch d ~now:0 ~from_chip:1 ~home_chip:1 ~lines:1 in
  Alcotest.(check int) "other controller idle"
    (cfg.Config.dram_latency + cfg.Config.dram_service)
    c3

let test_dram_drains () =
  let cfg, d = dram () in
  ignore (Dram.fetch d ~now:0 ~from_chip:0 ~home_chip:0 ~lines:10);
  let free = Dram.controller_free_at d ~chip:0 in
  let cost = Dram.fetch d ~now:(free + 100) ~from_chip:0 ~home_chip:0 ~lines:1 in
  Alcotest.(check int) "no queueing after drain"
    (cfg.Config.dram_latency + cfg.Config.dram_service)
    cost

let test_dram_accounting () =
  let _, d = dram () in
  ignore (Dram.fetch d ~now:0 ~from_chip:0 ~home_chip:2 ~lines:7);
  Alcotest.(check int) "lines served on home chip" 7 (Dram.lines_served d ~chip:2);
  Alcotest.(check int) "total" 7 (Dram.total_lines_served d);
  Alcotest.(check bool) "utilization positive" true (Dram.utilization d ~now:10000 > 0.0);
  Dram.reset d;
  Alcotest.(check int) "reset" 0 (Dram.total_lines_served d)

let test_dram_zero_lines () =
  let _, d = dram () in
  Alcotest.(check int) "zero lines free" 0
    (Dram.fetch d ~now:0 ~from_chip:0 ~home_chip:0 ~lines:0)

let suite =
  [
    Alcotest.test_case "alloc aligns and rounds" `Quick test_alloc_alignment;
    Alcotest.test_case "object_at boundaries" `Quick test_object_at;
    Alcotest.test_case "find and lines_of" `Quick test_find_and_lines;
    Alcotest.test_case "alloc rejects bad sizes" `Quick test_rejects_bad_alloc;
    Alcotest.test_case "dram idle fetch cost" `Quick test_dram_idle_fetch;
    Alcotest.test_case "dram bandwidth queueing" `Quick test_dram_queueing;
    Alcotest.test_case "dram queue drains" `Quick test_dram_drains;
    Alcotest.test_case "dram accounting" `Quick test_dram_accounting;
    Alcotest.test_case "dram zero-line fetch" `Quick test_dram_zero_lines;
  ]
