(* The cooperative scheduler / discrete-event engine: clocks, costs,
   migration, yielding, idle accounting, control events, determinism. *)

open O2_simcore
open O2_runtime

let engine () = Engine.create (Machine.create Config.amd16)

let test_spawn_runs () =
  let e = engine () in
  let ran = ref false in
  ignore (Engine.spawn e ~core:0 ~name:"t" (fun () -> ran := true));
  Engine.run e;
  Alcotest.(check bool) "body ran" true !ran;
  Alcotest.(check int) "no live threads" 0 (Engine.live_threads e)

let test_compute_advances_clock () =
  let e = engine () in
  ignore (Engine.spawn e ~core:3 ~name:"t" (fun () -> Api.compute 1234));
  Engine.run e;
  Alcotest.(check int) "clock advanced" 1234 (Engine.core_clock e 3);
  Alcotest.(check int) "busy cycles charged" 1234
    (Machine.counters (Engine.machine e) 3).Counters.busy_cycles;
  Alcotest.(check int) "other cores untouched" 0 (Engine.core_clock e 0)

let test_read_effect_charges_machine_cost () =
  let e = engine () in
  let ext =
    Memsys.alloc (Machine.memory (Engine.machine e)) ~name:"x" ~size:64
  in
  let cost = ref 0 in
  ignore
    (Engine.spawn e ~core:0 ~name:"t" (fun () ->
         cost := Api.read ~addr:ext.Memsys.base ~len:8));
  Engine.run e;
  Alcotest.(check bool) "dram cost" true (!cost >= Config.amd16.Config.dram_latency);
  Alcotest.(check int) "clock = cost" !cost (Engine.core_clock e 0)

let test_migration () =
  let e = engine () in
  let trace = ref [] in
  ignore
    (Engine.spawn e ~core:2 ~name:"t" (fun () ->
         trace := Api.current_core () :: !trace;
         Api.migrate_to 9;
         trace := Api.current_core () :: !trace;
         Api.compute 10));
  Engine.run e;
  Alcotest.(check (list int)) "migrated" [ 9; 2 ] !trace;
  let m = Engine.machine e in
  Alcotest.(check int) "out counted" 1 (Machine.counters m 2).Counters.migrations_out;
  Alcotest.(check int) "in counted" 1 (Machine.counters m 9).Counters.migrations_in;
  Alcotest.(check int) "costs 2000 cycles end to end" 2010 (Engine.core_clock e 9)

let test_migrate_to_self_is_free () =
  let e = engine () in
  ignore (Engine.spawn e ~core:1 ~name:"t" (fun () -> Api.migrate_to 1));
  Engine.run e;
  Alcotest.(check int) "no cycles" 0 (Engine.core_clock e 1);
  Alcotest.(check int) "no migration counted" 0
    (Machine.counters (Engine.machine e) 1).Counters.migrations_out

let test_migrate_out_of_range () =
  let e = engine () in
  ignore (Engine.spawn e ~core:0 ~name:"t" (fun () -> Api.migrate_to 99));
  Alcotest.check_raises "bad core" (Invalid_argument "migrate_to: core out of range")
    (fun () -> Engine.run e)

let test_yield_interleaves () =
  let e = engine () in
  let log = Buffer.create 16 in
  let worker tag () =
    for _ = 1 to 3 do
      Buffer.add_string log tag;
      Api.compute 10;
      Api.yield ()
    done
  in
  ignore (Engine.spawn e ~core:0 ~name:"a" (worker "a"));
  ignore (Engine.spawn e ~core:0 ~name:"b" (worker "b"));
  Engine.run e;
  Alcotest.(check string) "round robin" "ababab" (Buffer.contents log)

let test_two_cores_parallel_time () =
  let e = engine () in
  ignore (Engine.spawn e ~core:0 ~name:"a" (fun () -> Api.compute 1000));
  ignore (Engine.spawn e ~core:1 ~name:"b" (fun () -> Api.compute 1000));
  Engine.run e;
  (* both finish at virtual time 1000: cores run in parallel *)
  Alcotest.(check int) "virtual now" 1000 (Engine.now e)

let test_idle_accounting () =
  let e = engine () in
  ignore (Engine.spawn e ~core:0 ~name:"t" (fun () -> Api.compute 400));
  Engine.at e ~time:1000 (fun ~now:_ -> ());
  Engine.run e;
  Engine.finalize_idle e;
  let c = Machine.counters (Engine.machine e) 0 in
  Alcotest.(check int) "busy" 400 c.Counters.busy_cycles;
  Alcotest.(check int) "idle = horizon - busy" 600 c.Counters.idle_cycles

let test_control_events () =
  let e = engine () in
  let fired = ref [] in
  Engine.at e ~time:500 (fun ~now -> fired := now :: !fired);
  Engine.every e ~period:1000 (fun ~now -> fired := now :: !fired);
  ignore (Engine.spawn e ~core:0 ~name:"t" (fun () -> Api.compute 3500));
  Engine.run ~until:3500 e;
  Alcotest.(check (list int)) "control callbacks" [ 3000; 2000; 1000; 500 ] !fired

let test_run_until_resumable () =
  let e = engine () in
  let steps = ref 0 in
  ignore
    (Engine.spawn e ~core:0 ~name:"t" (fun () ->
         while true do
           Api.compute 100;
           incr steps
         done));
  Engine.run ~until:1000 e;
  let at_1000 = !steps in
  Engine.run ~until:2000 e;
  Alcotest.(check bool) "progressed in first window" true (at_1000 >= 9);
  Alcotest.(check bool) "continued in second window" true (!steps >= 2 * at_1000 - 1)

let test_stop_when () =
  let e = engine () in
  let steps = ref 0 in
  ignore
    (Engine.spawn e ~core:0 ~name:"t" (fun () ->
         while true do
           Api.compute 100;
           incr steps
         done));
  Engine.run ~stop_when:(fun () -> !steps >= 5) e;
  Alcotest.(check int) "stopped promptly" 5 !steps

let test_determinism () =
  let run_once () =
    let e = engine () in
    let ct = Coretime.create e () in
    let spec = { O2_workload.Dir_workload.default_spec with dirs = 16 } in
    let w = O2_workload.Dir_workload.build ct spec in
    O2_workload.Dir_workload.spawn_threads w;
    Engine.run ~until:3_000_000 e;
    ( O2_workload.Dir_workload.lookups_done w,
      Engine.events_processed e,
      Array.map
        (fun c -> c.Counters.dram_loads)
        (Machine.all_counters (Engine.machine e)) )
  in
  let a = run_once () and b = run_once () in
  Alcotest.(check bool) "identical runs" true (a = b)

let test_ship_to_is_cheap () =
  let e = engine () in
  let cost = ref 0 in
  ignore
    (Engine.spawn e ~core:0 ~name:"t" (fun () ->
         let t0 = Api.now () in
         Api.ship_to 9;
         cost := Api.now () - t0));
  Engine.run e;
  Alcotest.(check int) "active message = amsg cycles"
    (Config.amsg_cycles Config.amd16)
    !cost;
  Alcotest.(check bool) "an order of magnitude under migration" true
    (!cost * 4 < Config.migration_cycles Config.amd16);
  Alcotest.(check int) "counted as a movement" 1
    (Machine.counters (Engine.machine e) 9).Counters.migrations_in

let test_daemons_do_not_keep_sim_alive () =
  let e = engine () in
  let ticks = ref 0 in
  Engine.every e ~period:1000 (fun ~now:_ -> incr ticks);
  ignore (Engine.spawn e ~core:0 ~name:"t" (fun () -> Api.compute 3500));
  (* without the daemon rule this would never return *)
  Engine.run e;
  Alcotest.(check int) "monitor ticked while work existed" 3 !ticks;
  Alcotest.(check bool) "virtual time stopped with the work" true
    (Engine.now e <= 3500)

let test_spawn_bad_core () =
  let e = engine () in
  Alcotest.check_raises "bad core" (Invalid_argument "Engine.spawn: bad core")
    (fun () -> ignore (Engine.spawn e ~core:16 ~name:"t" (fun () -> ())))

let suite =
  [
    Alcotest.test_case "spawn and run" `Quick test_spawn_runs;
    Alcotest.test_case "compute charges the clock" `Quick test_compute_advances_clock;
    Alcotest.test_case "reads cost machine cycles" `Quick test_read_effect_charges_machine_cost;
    Alcotest.test_case "migration moves the thread and costs 2000" `Quick test_migration;
    Alcotest.test_case "migrate to self is free" `Quick test_migrate_to_self_is_free;
    Alcotest.test_case "migrate out of range rejected" `Quick test_migrate_out_of_range;
    Alcotest.test_case "yield interleaves cooperatively" `Quick test_yield_interleaves;
    Alcotest.test_case "cores advance in parallel virtual time" `Quick test_two_cores_parallel_time;
    Alcotest.test_case "idle cycles account for gaps" `Quick test_idle_accounting;
    Alcotest.test_case "at/every control events" `Quick test_control_events;
    Alcotest.test_case "run ~until is resumable" `Quick test_run_until_resumable;
    Alcotest.test_case "stop_when" `Quick test_stop_when;
    Alcotest.test_case "simulation is deterministic" `Quick test_determinism;
    Alcotest.test_case "ship_to moves cheaply (active messages)" `Quick test_ship_to_is_cheap;
    Alcotest.test_case "daemon monitors never keep the sim alive" `Quick test_daemons_do_not_keep_sim_alive;
    Alcotest.test_case "spawn validates the core" `Quick test_spawn_bad_core;
  ]
