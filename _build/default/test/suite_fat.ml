(* The FAT substrate: 8.3 names, image/chain management, directory
   operations, simulated lookups, and the fsck checker. *)

open O2_simcore
open O2_fs

let mem () = Memsys.create ~line_bytes:64 ()

(* ---------- names ---------- *)

let test_name_encode () =
  Alcotest.(check (result string string)) "simple" (Ok "FILE    TXT")
    (Fat_name.to_83 "file.txt");
  Alcotest.(check (result string string)) "no extension" (Ok "README     ")
    (Fat_name.to_83 "readme");
  Alcotest.(check (result string string)) "full width" (Ok "ABCDEFGHIJK")
    (Fat_name.to_83 "abcdefgh.ijk")

let test_name_rejects () =
  let bad s = Result.is_error (Fat_name.to_83 s) in
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "too long base" true (bad "abcdefghi");
  Alcotest.(check bool) "too long ext" true (bad "a.abcd");
  Alcotest.(check bool) "two dots" true (bad "a.b.c");
  Alcotest.(check bool) "leading dot" true (bad ".bashrc");
  Alcotest.(check bool) "space" true (bad "a b.txt")

let test_name_roundtrip () =
  List.iter
    (fun n ->
      let enc = Fat_name.to_83_exn n in
      Alcotest.(check string) n n (Fat_name.of_83 enc))
    [ "file.txt"; "readme"; "a.b"; "f123.dat"; "abcdefgh.ijk" ]

let test_name_equal_case_insensitive () =
  Alcotest.(check bool) "case" true (Fat_name.equal "File.TXT" "fILE.txt");
  Alcotest.(check bool) "different" false (Fat_name.equal "a.txt" "b.txt");
  Alcotest.(check bool) "invalid" false (Fat_name.equal "" "")

let prop_valid_names_roundtrip =
  let name_gen =
    QCheck2.Gen.(
      let letters n =
        string_size ~gen:(char_range 'a' 'z') (int_range 1 n)
      in
      map2
        (fun base ext -> if ext = "" then base else base ^ "." ^ ext)
        (letters 8)
        (oneof [ return ""; letters 3 ]))
  in
  QCheck2.Test.make ~name:"8.3 round-trip for valid names" ~count:300 name_gen
    (fun n ->
      match Fat_name.to_83 n with
      | Error _ -> false
      | Ok enc -> String.length enc = 11 && Fat_name.of_83 enc = n)

(* ---------- entries ---------- *)

let test_entry_roundtrip () =
  let e =
    {
      Fat_types.name = Fat_name.to_83_exn "boot.bin";
      attr = Fat_types.attr_archive;
      first_cluster = 1234;
      size = 987654;
    }
  in
  let b = Bytes.make 64 '\xAA' in
  Fat_types.encode_entry e b ~off:32;
  Alcotest.(check bool) "decodes equal" true (Fat_types.decode_entry b ~off:32 = e)

(* ---------- image / chains ---------- *)

let image ?(clusters = 64) () =
  Fat_image.create (mem ()) ~label:"t" ~cluster_bytes:512 ~total_clusters:clusters

let test_image_geometry () =
  let img = image () in
  Alcotest.(check int) "free initially" 64 (Fat_image.free_clusters img);
  Alcotest.(check bool) "cluster 2 valid" true (Fat_image.valid_cluster img 2);
  Alcotest.(check bool) "cluster 66 invalid" false (Fat_image.valid_cluster img 66);
  Alcotest.(check bool) "cluster 1 invalid" false (Fat_image.valid_cluster img 1);
  (* simulated addresses are distinct per cluster and within the extent *)
  let a2 = Fat_image.cluster_addr img 2 and a3 = Fat_image.cluster_addr img 3 in
  Alcotest.(check int) "consecutive clusters 512B apart" 512 (a3 - a2)

let test_chain_alloc_follow_free () =
  let img = image () in
  let head = Option.get (Fat_image.alloc_chain img 5) in
  let chain = Fat_image.chain img head in
  Alcotest.(check int) "5 clusters" 5 (List.length chain);
  Alcotest.(check int) "free decremented" 59 (Fat_image.free_clusters img);
  Fat_image.free_chain img head;
  Alcotest.(check int) "freed" 64 (Fat_image.free_clusters img)

let test_chain_extension () =
  let img = image () in
  let head = Option.get (Fat_image.alloc_cluster img ~prev:None) in
  let second = Option.get (Fat_image.alloc_cluster img ~prev:(Some head)) in
  Alcotest.(check (list int)) "linked" [ head; second ] (Fat_image.chain img head)

let test_alloc_exhaustion () =
  let img = image ~clusters:4 () in
  Alcotest.(check bool) "fits" true (Fat_image.alloc_chain img 4 <> None);
  Alcotest.(check (option int)) "full" None (Fat_image.alloc_cluster img ~prev:None)

let test_chain_cycle_detected () =
  let img = image () in
  let head = Option.get (Fat_image.alloc_chain img 3) in
  (* corrupt: point the chain back at its head *)
  let second = List.nth (Fat_image.chain img head) 1 in
  Fat_image.fat_set img second head;
  Alcotest.(check bool) "cycle raises" true
    (match Fat_image.chain img head with
    | _ -> false
    | exception Failure _ -> true)

(* ---------- directories ---------- *)

let test_dir_add_find_remove () =
  let img = image () in
  let head = Option.get (Fat_image.alloc_cluster img ~prev:None) in
  let entry name =
    {
      Fat_types.name = Fat_name.to_83_exn name;
      attr = Fat_types.attr_archive;
      first_cluster = 0;
      size = 0;
    }
  in
  Alcotest.(check bool) "add a" true (Fat_dir.add img ~head (entry "a.txt") = Ok ());
  Alcotest.(check bool) "add b" true (Fat_dir.add img ~head (entry "b.txt") = Ok ());
  Alcotest.(check bool) "duplicate rejected" true
    (Result.is_error (Fat_dir.add img ~head (entry "a.txt")));
  Alcotest.(check int) "count" 2 (Fat_dir.count img ~head);
  Alcotest.(check bool) "find a" true
    (Fat_dir.find img ~head ~name83:(Fat_name.to_83_exn "a.txt") <> None);
  Alcotest.(check bool) "remove a" true
    (Fat_dir.remove img ~head ~name83:(Fat_name.to_83_exn "a.txt"));
  Alcotest.(check bool) "a gone" true
    (Fat_dir.find img ~head ~name83:(Fat_name.to_83_exn "a.txt") = None);
  (* deleted slot is reused *)
  Alcotest.(check bool) "add c reuses slot" true
    (Fat_dir.add img ~head (entry "c.txt") = Ok ());
  Alcotest.(check int) "count back to 2" 2 (Fat_dir.count img ~head)

let test_dir_grows_across_clusters () =
  let img = image () in
  let head = Option.get (Fat_image.alloc_cluster img ~prev:None) in
  let per = Fat_dir.entries_per_cluster img in
  let n = (2 * per) + 3 in
  for i = 0 to n - 1 do
    let e =
      {
        Fat_types.name = Fat_name.to_83_exn (Printf.sprintf "f%d.dat" i);
        attr = Fat_types.attr_archive;
        first_cluster = 0;
        size = 0;
      }
    in
    match Fat_dir.add img ~head e with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "add %d: %s" i msg
  done;
  Alcotest.(check int) "3 clusters" 3 (List.length (Fat_image.chain img head));
  Alcotest.(check int) "all present" n (Fat_dir.count img ~head);
  Alcotest.(check bool) "find across boundary" true
    (Fat_dir.find img ~head ~name83:(Fat_name.to_83_exn (Printf.sprintf "f%d.dat" (n - 1)))
    <> None)

let test_append_bulk_matches_add () =
  let img1 = image () and img2 = image () in
  let head1 = Option.get (Fat_image.alloc_cluster img1 ~prev:None) in
  let head2 = Option.get (Fat_image.alloc_cluster img2 ~prev:None) in
  let entries =
    List.init 40 (fun i ->
        {
          Fat_types.name = Fat_name.to_83_exn (Printf.sprintf "f%d.dat" i);
          attr = Fat_types.attr_archive;
          first_cluster = 0;
          size = i;
        })
  in
  List.iter (fun e -> Result.get_ok (Fat_dir.add img1 ~head:head1 e)) entries;
  Result.get_ok (Fat_dir.append_bulk img2 ~head:head2 entries);
  Alcotest.(check bool) "same listing" true
    (Fat_dir.list img1 ~head:head1 = Fat_dir.list img2 ~head:head2)

(* ---------- Fat facade + simulated lookups ---------- *)

let fat () =
  let m = Memsys.create ~line_bytes:64 () in
  (m, Fat.format m ~label:"t" ~cluster_bytes:512 ~clusters:256 ())

let test_fat_mkdir_and_host_lookup () =
  let _, fs = fat () in
  let d = Result.get_ok (Fat.mkdir fs "www") in
  Result.get_ok (Fat.populate fs d ~prefix:"page" ~count:30);
  Alcotest.(check bool) "host lookup hit" true (Fat.lookup_host fs d "page7.dat" <> None);
  Alcotest.(check bool) "host lookup miss" true (Fat.lookup_host fs d "nope.dat" = None);
  Alcotest.(check int) "readdir count" 30 (List.length (Fat.readdir fs d));
  Alcotest.(check bool) "find_dir" true (Fat.find_dir fs "www" = Some d);
  Alcotest.(check bool) "duplicate mkdir fails" true (Result.is_error (Fat.mkdir fs "www"))

let test_fat_sim_lookup_agrees_with_host () =
  (* the volume must live in the machine's memory for simulated reads *)
  let machine = Machine.create Config.amd16 in
  let fs = Fat.format (Machine.memory machine) ~label:"t" ~cluster_bytes:512 ~clusters:256 () in
  let d = Result.get_ok (Fat.mkdir fs "docs") in
  Result.get_ok (Fat.populate fs d ~prefix:"f" ~count:100);
  let engine = O2_runtime.Engine.create machine in
  let sim_result = ref None and sim_miss = ref (Some Fat_types.{ name = ""; attr = 0; first_cluster = 0; size = 0 }) in
  ignore
    (O2_runtime.Engine.spawn engine ~core:0 ~name:"t" (fun () ->
         sim_result := Fat.lookup fs d "f55.dat";
         sim_miss := Fat.lookup fs d "missing.dat"));
  O2_runtime.Engine.run engine;
  Alcotest.(check bool) "hit agrees with host" true
    (!sim_result = Fat.lookup_host fs d "f55.dat" && !sim_result <> None);
  Alcotest.(check bool) "miss agrees" true (!sim_miss = None);
  Alcotest.(check bool) "lookup charged cycles" true
    (O2_runtime.Engine.core_clock engine 0 > 0)

let test_fat_lookup_locked_serializes () =
  let machine = Machine.create Config.amd16 in
  let fs = Fat.format (Machine.memory machine) ~label:"t" ~cluster_bytes:512 ~clusters:512 () in
  let d = Result.get_ok (Fat.mkdir fs "shared") in
  Result.get_ok (Fat.populate fs d ~prefix:"f" ~count:200);
  let engine = O2_runtime.Engine.create machine in
  let hits = ref 0 in
  for core = 0 to 3 do
    ignore
      (O2_runtime.Engine.spawn engine ~core ~name:(Printf.sprintf "w%d" core)
         (fun () ->
           for i = 0 to 9 do
             if Fat.lookup_locked fs d (Printf.sprintf "f%d.dat" (i * 17)) <> None
             then incr hits
           done))
  done;
  O2_runtime.Engine.run engine;
  Alcotest.(check int) "all lookups resolved" 40 !hits;
  Alcotest.(check int) "lock used" 40 d.Fat.lock.O2_runtime.Spinlock.acquisitions

let test_fsck_clean_and_detects_corruption () =
  let _, fs = fat () in
  let d = Result.get_ok (Fat.mkdir fs "a") in
  Result.get_ok (Fat.populate fs d ~prefix:"f" ~count:50);
  let r = Fat_check.check fs in
  Alcotest.(check bool) "clean volume" true (Fat_check.ok r);
  Alcotest.(check int) "two directories (root + a)" 2 r.Fat_check.directories;
  Alcotest.(check int) "50 files" 50 r.Fat_check.files;
  (* corrupt the FAT: cross-link a cluster *)
  let img = Fat.image fs in
  Fat_image.fat_set img d.Fat.head d.Fat.head;
  let r = Fat_check.check fs in
  Alcotest.(check bool) "corruption detected" false (Fat_check.ok r)

let test_fat_rejects_invalid_names () =
  let _, fs = fat () in
  Alcotest.(check bool) "mkdir bad name" true (Result.is_error (Fat.mkdir fs "bad name"));
  let d = Result.get_ok (Fat.mkdir fs "ok") in
  Alcotest.(check bool) "add_file bad name" true
    (Result.is_error (Fat.add_file fs d ~name:"also bad" ~size:0))

let test_dir_object_identity () =
  let _, fs = fat () in
  let d = Result.get_ok (Fat.mkdir fs "obj") in
  Result.get_ok (Fat.populate fs d ~prefix:"f" ~count:40);
  Alcotest.(check int) "base addr = first cluster addr"
    (Fat_image.cluster_addr (Fat.image fs) d.Fat.head)
    (Fat.dir_base_addr fs d);
  Alcotest.(check int) "size covers the chain"
    (List.length (Fat.dir_clusters fs d) * 512)
    (Fat.dir_bytes fs d)

let test_nested_dirs_and_paths () =
  let _, fs = fat () in
  let www = Result.get_ok (Fat.mkdir fs "www") in
  let static = Result.get_ok (Fat.mkdir_in fs www "static") in
  Result.get_ok (Fat.populate fs static ~prefix:"img" ~count:10);
  Alcotest.(check (option string)) "registered under its path" (Some "/www/static")
    (Option.map (fun d -> d.Fat.dname) (Fat.find_dir fs "/www/static"));
  Alcotest.(check bool) "parent of static is www" true
    (Fat.parent fs static = Some www);
  Alcotest.(check bool) "parent of root-level dir is root" true
    (Fat.parent fs www = Some (Fat.root fs));
  (match Fat.resolve fs "/www/static/img3.dat" with
  | Some (`File e) ->
      Alcotest.(check string) "file found" "IMG3    DAT" e.Fat_types.name
  | _ -> Alcotest.fail "expected a file");
  (match Fat.resolve fs "/www/static" with
  | Some (`Dir d) -> Alcotest.(check string) "dir found" "/www/static" d.Fat.dname
  | _ -> Alcotest.fail "expected a dir");
  (match Fat.resolve fs "/www/static/../static/./img0.dat" with
  | Some (`File _) -> ()
  | _ -> Alcotest.fail "dot components");
  Alcotest.(check bool) "missing path" true (Fat.resolve fs "/www/nope/x" = None);
  Alcotest.(check bool) "fsck clean with nesting" true
    (Fat_check.ok (Fat_check.check fs))

let test_mkdir_path () =
  let _, fs = fat () in
  let c = Result.get_ok (Fat.mkdir_path fs "/a/b/c") in
  Alcotest.(check string) "deep dir created" "/a/b/c" c.Fat.dname;
  (* idempotent on existing components *)
  let c2 = Result.get_ok (Fat.mkdir_path fs "/a/b/c") in
  Alcotest.(check bool) "same handle" true (c == c2);
  Alcotest.(check bool) "intermediates registered" true
    (Fat.find_dir fs "/a/b" <> None)

let test_resolve_sim_agrees () =
  let machine = Machine.create Config.amd16 in
  let fs =
    Fat.format (Machine.memory machine) ~label:"t" ~cluster_bytes:512
      ~clusters:256 ()
  in
  let sub = Result.get_ok (Fat.mkdir_path fs "/srv/data") in
  Result.get_ok (Fat.populate fs sub ~prefix:"f" ~count:20);
  let engine = O2_runtime.Engine.create machine in
  let hit = ref None and miss = ref (Some (`Dir (Fat.root fs))) in
  ignore
    (O2_runtime.Engine.spawn engine ~core:0 ~name:"t" (fun () ->
         hit := Fat.resolve_sim fs "/srv/data/f7.dat";
         miss := Fat.resolve_sim fs "/srv/data/f99.dat"));
  O2_runtime.Engine.run engine;
  (match !hit with
  | Some (`File e) ->
      Alcotest.(check bool) "same entry as host resolve" true
        (Fat.resolve fs "/srv/data/f7.dat" = Some (`File e))
  | _ -> Alcotest.fail "sim resolve should find the file");
  Alcotest.(check bool) "sim resolve miss" true (!miss = None);
  Alcotest.(check bool) "component scans cost cycles" true
    (O2_runtime.Engine.core_clock engine 0 > 0)

(* Model-based property: a directory behaves like a name -> entry map
   under random add/remove/lookup sequences, and the volume stays
   fsck-clean throughout. *)
let prop_dir_matches_map =
  let op_gen =
    QCheck2.Gen.(
      oneof
        [
          map (fun i -> `Add i) (int_bound 25);
          map (fun i -> `Remove i) (int_bound 25);
          map (fun i -> `Lookup i) (int_bound 25);
        ])
  in
  QCheck2.Test.make ~name:"directory behaves like a map (and stays fsck-clean)"
    ~count:60
    QCheck2.Gen.(list_size (int_bound 120) op_gen)
    (fun ops ->
      let _, fs = fat () in
      let d = Result.get_ok (Fat.mkdir fs "m") in
      let model : (string, int) Hashtbl.t = Hashtbl.create 16 in
      let name i = Printf.sprintf "k%d.dat" i in
      let ok =
        List.for_all
          (fun op ->
            match op with
            | `Add i -> (
                let expected_ok = not (Hashtbl.mem model (name i)) in
                match Fat.add_file fs d ~name:(name i) ~size:i with
                | Ok () ->
                    Hashtbl.replace model (name i) i;
                    expected_ok
                | Error _ -> not expected_ok)
            | `Remove i ->
                let expected = Hashtbl.mem model (name i) in
                Hashtbl.remove model (name i);
                Fat.remove fs d (name i) = expected
            | `Lookup i -> (
                match (Fat.lookup_host fs d (name i), Hashtbl.find_opt model (name i)) with
                | Some e, Some size -> e.Fat_types.size = size
                | None, None -> true
                | Some _, None | None, Some _ -> false))
          ops
      in
      ok
      && List.length (Fat.readdir fs d) = Hashtbl.length model
      && Fat_check.ok (Fat_check.check fs))

let suite =
  [
    Alcotest.test_case "8.3 encoding" `Quick test_name_encode;
    Alcotest.test_case "8.3 rejects invalid names" `Quick test_name_rejects;
    Alcotest.test_case "8.3 round-trips" `Quick test_name_roundtrip;
    Alcotest.test_case "name comparison is case-insensitive" `Quick test_name_equal_case_insensitive;
    QCheck_alcotest.to_alcotest prop_valid_names_roundtrip;
    Alcotest.test_case "entry encode/decode" `Quick test_entry_roundtrip;
    Alcotest.test_case "image geometry" `Quick test_image_geometry;
    Alcotest.test_case "chain alloc/follow/free" `Quick test_chain_alloc_follow_free;
    Alcotest.test_case "chain extension" `Quick test_chain_extension;
    Alcotest.test_case "allocation exhaustion" `Quick test_alloc_exhaustion;
    Alcotest.test_case "chain cycles detected" `Quick test_chain_cycle_detected;
    Alcotest.test_case "dir add/find/remove/reuse" `Quick test_dir_add_find_remove;
    Alcotest.test_case "dir grows across clusters" `Quick test_dir_grows_across_clusters;
    Alcotest.test_case "append_bulk = repeated add" `Quick test_append_bulk_matches_add;
    Alcotest.test_case "mkdir + host lookups" `Quick test_fat_mkdir_and_host_lookup;
    Alcotest.test_case "simulated lookup agrees with host" `Quick test_fat_sim_lookup_agrees_with_host;
    Alcotest.test_case "locked lookups serialize" `Quick test_fat_lookup_locked_serializes;
    Alcotest.test_case "fsck: clean and corrupted volumes" `Quick test_fsck_clean_and_detects_corruption;
    Alcotest.test_case "invalid names rejected" `Quick test_fat_rejects_invalid_names;
    Alcotest.test_case "directory object identity" `Quick test_dir_object_identity;
    Alcotest.test_case "nested directories and path resolution" `Quick test_nested_dirs_and_paths;
    Alcotest.test_case "mkdir_path" `Quick test_mkdir_path;
    Alcotest.test_case "simulated path resolution" `Quick test_resolve_sim_agrees;
    QCheck_alcotest.to_alcotest prop_dir_matches_map;
  ]
