let test_round_robin () =
  let p =
    O2_sched.Thread_sched.assign ~threads:6 ~cores:4 ~cores_per_chip:2
      ~similarity:(fun _ _ -> 0.0)
  in
  Alcotest.(check (list int)) "wraps" [ 0; 1; 2; 3; 0; 1 ] (Array.to_list p)

let test_clusters_group_similar_threads () =
  (* threads 0-2 share a working set, threads 3-5 share another *)
  let similarity a b =
    if (a < 3 && b < 3) || (a >= 3 && b >= 3) then 1.0 else 0.0
  in
  let c = O2_sched.Clustered_sched.clusters ~threads:6 ~groups:2 ~similarity in
  let group i = c.(i) in
  Alcotest.(check bool) "first trio together" true
    (group 0 = group 1 && group 1 = group 2);
  Alcotest.(check bool) "second trio together" true
    (group 3 = group 4 && group 4 = group 5);
  Alcotest.(check bool) "groups distinct" true (group 0 <> group 3)

let test_clusters_balanced () =
  let c =
    O2_sched.Clustered_sched.clusters ~threads:8 ~groups:2
      ~similarity:(fun _ _ -> 1.0)
  in
  let count g = Array.fold_left (fun n x -> if x = g then n + 1 else n) 0 c in
  Alcotest.(check int) "half each" 4 (count 0);
  Alcotest.(check int) "half each" 4 (count 1)

let test_assign_places_cluster_on_one_chip () =
  let similarity a b =
    if (a < 4 && b < 4) || (a >= 4 && b >= 4) then 1.0 else 0.0
  in
  let p =
    O2_sched.Clustered_sched.assign ~threads:8 ~cores:8 ~cores_per_chip:4
      ~similarity
  in
  let chip t = p.(t) / 4 in
  Alcotest.(check bool) "first cluster shares a chip" true
    (chip 0 = chip 1 && chip 1 = chip 2 && chip 2 = chip 3);
  Alcotest.(check bool) "clusters on different chips" true (chip 0 <> chip 4);
  (* all cores valid and the cluster spreads within the chip *)
  Array.iter (fun core -> Alcotest.(check bool) "core in range" true (core >= 0 && core < 8)) p;
  Alcotest.(check int) "4 distinct cores in cluster 0" 4
    (List.length (List.sort_uniq compare [ p.(0); p.(1); p.(2); p.(3) ]))

let test_all_threads_assigned () =
  let c =
    O2_sched.Clustered_sched.clusters ~threads:7 ~groups:3
      ~similarity:(fun _ _ -> 0.5)
  in
  Array.iter
    (fun g -> Alcotest.(check bool) "assigned" true (g >= 0 && g < 3))
    c

let suite =
  [
    Alcotest.test_case "round-robin placement" `Quick test_round_robin;
    Alcotest.test_case "clustering groups similar threads" `Quick test_clusters_group_similar_threads;
    Alcotest.test_case "clusters are balanced" `Quick test_clusters_balanced;
    Alcotest.test_case "clusters map onto chips" `Quick test_assign_places_cluster_on_one_chip;
    Alcotest.test_case "every thread gets a group" `Quick test_all_threads_assigned;
  ]
