open O2_runtime

let test_fifo_ties () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:5 "a";
  Event_queue.push q ~time:5 "b";
  Event_queue.push q ~time:5 "c";
  let popped = List.init 3 (fun _ -> snd (Option.get (Event_queue.pop q))) in
  Alcotest.(check (list string)) "insertion order on ties" [ "a"; "b"; "c" ] popped

let test_time_order () =
  let q = Event_queue.create () in
  List.iter (fun t -> Event_queue.push q ~time:t t) [ 7; 1; 9; 3; 3; 0 ];
  let rec drain acc =
    match Event_queue.pop q with
    | None -> List.rev acc
    | Some (t, _) -> drain (t :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 3; 3; 7; 9 ] (drain [])

let test_negative_time () =
  let q = Event_queue.create () in
  Alcotest.check_raises "negative time"
    (Invalid_argument "Event_queue.push: negative time") (fun () ->
      Event_queue.push q ~time:(-1) ())

let test_peek_and_clear () =
  let q = Event_queue.create () in
  Alcotest.(check (option int)) "empty peek" None (Event_queue.peek_time q);
  Event_queue.push q ~time:4 ();
  Event_queue.push q ~time:2 ();
  Alcotest.(check (option int)) "peek min" (Some 2) (Event_queue.peek_time q);
  Alcotest.(check int) "length" 2 (Event_queue.length q);
  Event_queue.clear q;
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

let prop_sorted_stable =
  QCheck2.Test.make ~name:"pops are sorted and stable" ~count:300
    QCheck2.Gen.(list_size (int_bound 300) (int_bound 50))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri (fun i t -> Event_queue.push q ~time:t (t, i)) times;
      if not (Event_queue.check_heap_property q) then false
      else begin
        let rec drain acc =
          match Event_queue.pop q with
          | None -> List.rev acc
          | Some (_, payload) -> drain (payload :: acc)
        in
        let popped = drain [] in
        let expected =
          List.mapi (fun i t -> (t, i)) times
          |> List.stable_sort (fun (t1, i1) (t2, i2) ->
                 if t1 <> t2 then compare t1 t2 else compare i1 i2)
        in
        popped = expected
      end)

let prop_interleaved =
  QCheck2.Test.make ~name:"interleaved push/pop keeps heap property" ~count:200
    QCheck2.Gen.(list_size (int_bound 200) (option (int_bound 40)))
    (fun ops ->
      let q = Event_queue.create () in
      List.for_all
        (fun op ->
          (match op with
          | Some t -> Event_queue.push q ~time:t ()
          | None -> ignore (Event_queue.pop q));
          Event_queue.check_heap_property q)
        ops)

let suite =
  [
    Alcotest.test_case "FIFO on equal times" `Quick test_fifo_ties;
    Alcotest.test_case "time ordering" `Quick test_time_order;
    Alcotest.test_case "rejects negative time" `Quick test_negative_time;
    Alcotest.test_case "peek and clear" `Quick test_peek_and_clear;
    QCheck_alcotest.to_alcotest prop_sorted_stable;
    QCheck_alcotest.to_alcotest prop_interleaved;
  ]
