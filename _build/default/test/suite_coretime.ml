(* CoreTime end to end on the simulated machine: annotation bookkeeping,
   promotion, migration to home cores, baseline transparency, replication
   policy, ownership accounting. *)

open O2_simcore
open O2_runtime

let make ?policy () =
  let machine = Machine.create Config.amd16 in
  let engine = Engine.create machine in
  let ct = Coretime.create ?policy engine () in
  (machine, engine, ct)

(* A 512 KB object (fits one core's packing budget) plus a 4 MB filler
   buffer: scanning the filler between operations evicts the object, so
   every operation on it misses — "expensive to fetch". *)
let obj_size = 512 * 1024
let filler_size = 4 * 1024 * 1024

let big_object ct machine name =
  let ext = Memsys.alloc (Machine.memory machine) ~name ~size:obj_size in
  let obj = Coretime.register ct ~base:ext.Memsys.base ~size:obj_size ~name () in
  (ext.Memsys.base, obj)

let filler machine =
  (Memsys.alloc (Machine.memory machine) ~name:"filler" ~size:filler_size)
    .Memsys.base

let scan addr size = ignore (Api.read ~addr ~len:size)

let test_ct_requires_thread_frame () =
  let _, engine, ct = make () in
  ignore
    (Engine.spawn engine ~core:0 ~name:"t" (fun () -> Coretime.ct_end ct));
  Alcotest.(check bool) "ct_end without ct_start raises" true
    (match Engine.run engine with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_unregistered_address_is_harmless () =
  let _, engine, ct = make () in
  let ops = ref 0 in
  ignore
    (Engine.spawn engine ~core:0 ~name:"t" (fun () ->
         Coretime.ct_start ct 0xDEAD0000;
         Api.compute 10;
         Coretime.ct_end ct;
         incr ops));
  Engine.run engine;
  Alcotest.(check int) "op ran" 1 !ops;
  Alcotest.(check int) "counted" 1 (Coretime.stats ct).Coretime.ops;
  Alcotest.(check int) "nothing promoted" 0 (Coretime.stats ct).Coretime.promotions

let test_promotion_after_expensive_ops () =
  let machine, engine, ct =
    make ~policy:{ Coretime.Policy.default with Coretime.Policy.rebalance = false } ()
  in
  let addr, obj = big_object ct machine "hot" in
  let fill = filler machine in
  ignore
    (Engine.spawn engine ~core:0 ~name:"t" (fun () ->
         for _ = 1 to 8 do
           Coretime.with_op ct addr (fun () -> scan addr obj_size);
           scan fill filler_size
         done));
  Engine.run engine;
  Alcotest.(check bool) "promoted to a home core" true
    (obj.Coretime.Object_table.home <> None);
  Alcotest.(check int) "one promotion" 1 (Coretime.stats ct).Coretime.promotions;
  Alcotest.(check bool) "miss EWMA is large" true
    (obj.Coretime.Object_table.ewma_misses > 100.0)

let test_no_promotion_when_cache_resident () =
  let machine, engine, ct = make () in
  (* small object: after the first scan it lives in L1/L2 *)
  let size = 4096 in
  let ext = Memsys.alloc (Machine.memory machine) ~name:"small" ~size in
  let obj = Coretime.register ct ~base:ext.Memsys.base ~size ~name:"small" () in
  ignore
    (Engine.spawn engine ~core:0 ~name:"t" (fun () ->
         for _ = 1 to 50 do
           Coretime.with_op ct ext.Memsys.base (fun () ->
               scan ext.Memsys.base size)
         done));
  Engine.run engine;
  Alcotest.(check bool) "never promoted" true (obj.Coretime.Object_table.home = None);
  Alcotest.(check bool) "EWMA decayed" true (obj.Coretime.Object_table.ewma_misses < 8.0)

let test_operations_migrate_to_home () =
  let machine, engine, ct = make () in
  let addr, obj = big_object ct machine "obj" in
  Coretime.Object_table.assign (Coretime.table ct) obj 7;
  let exec_core = ref (-1) and back_core = ref (-1) in
  ignore
    (Engine.spawn engine ~core:2 ~name:"t" (fun () ->
         Coretime.ct_start ct addr;
         exec_core := Api.current_core ();
         Api.compute 100;
         Coretime.ct_end ct;
         back_core := Api.current_core ()));
  Engine.run engine;
  Alcotest.(check int) "ran on the object's home" 7 !exec_core;
  Alcotest.(check int) "returned after ct_end" 2 !back_core;
  Alcotest.(check int) "migration counted" 1
    (Coretime.stats ct).Coretime.op_migrations;
  Alcotest.(check int) "op retired on the home core" 1
    (Machine.counters machine 7).Counters.ops_completed

let test_no_migrate_back_policy () =
  let machine, engine, ct =
    make
      ~policy:{ Coretime.Policy.default with Coretime.Policy.migrate_back = false }
      ()
  in
  let addr, obj = big_object ct machine "obj" in
  Coretime.Object_table.assign (Coretime.table ct) obj 5;
  let final = ref (-1) in
  ignore
    (Engine.spawn engine ~core:0 ~name:"t" (fun () ->
         Coretime.with_op ct addr (fun () -> Api.compute 10);
         final := Api.current_core ()));
  Engine.run engine;
  Alcotest.(check int) "stayed on the home core" 5 !final

let test_baseline_never_migrates () =
  let machine, engine, ct = make ~policy:Coretime.Policy.baseline () in
  let addr, obj = big_object ct machine "obj" in
  Coretime.Object_table.assign (Coretime.table ct) obj 7;
  let exec_core = ref (-1) in
  ignore
    (Engine.spawn engine ~core:2 ~name:"t" (fun () ->
         Coretime.with_op ct addr (fun () ->
             exec_core := Api.current_core ();
             scan addr 65536)));
  Engine.run engine;
  Alcotest.(check int) "ran locally" 2 !exec_core;
  Alcotest.(check int) "ops still counted" 1 (Coretime.stats ct).Coretime.ops;
  Alcotest.(check int) "no migrations" 0
    (Machine.counters machine 2).Counters.migrations_out

let test_nested_regions_feed_clustering () =
  let machine, engine, ct = make () in
  let a, _ = big_object ct machine "a" in
  let b, _ = big_object ct machine "b" in
  ignore
    (Engine.spawn engine ~core:0 ~name:"t" (fun () ->
         for _ = 1 to 5 do
           Coretime.ct_start ct a;
           Api.compute 10;
           Coretime.ct_start ct b;
           Api.compute 10;
           Coretime.ct_end ct;
           Coretime.ct_end ct
         done));
  Engine.run engine;
  Alcotest.(check int) "coaccess observed" 5
    (Coretime.Clustering.coaccess_count (Coretime.clustering ct) a b);
  Alcotest.(check int) "10 operations (2 per iteration)" 10
    (Coretime.stats ct).Coretime.ops

let test_replication_policy_skips_promotion () =
  let policy =
    {
      Coretime.Policy.default with
      Coretime.Policy.replicate_read_only = true;
      replicate_min_ops = 4;
      rebalance = false;  (* keep ops_period from resetting mid-test *)
    }
  in
  let machine, engine, ct = make ~policy () in
  let addr, obj = big_object ct machine "readonly-hot" in
  let fill = filler machine in
  ignore
    (Engine.spawn engine ~core:0 ~name:"t" (fun () ->
         for _ = 1 to 12 do
           Coretime.with_op ct addr (fun () -> scan addr obj_size);
           scan fill filler_size
         done));
  Engine.run engine;
  Alcotest.(check bool) "left to the hardware" true
    (obj.Coretime.Object_table.home = None);
  Alcotest.(check bool) "replications counted" true
    ((Coretime.stats ct).Coretime.replications > 0)

let test_write_ops_disable_replication () =
  let policy =
    {
      Coretime.Policy.default with
      Coretime.Policy.replicate_read_only = true;
      replicate_min_ops = 4;
      rebalance = false;  (* keep ops_period from resetting mid-test *)
    }
  in
  let machine, engine, ct = make ~policy () in
  let addr, obj = big_object ct machine "written" in
  let fill = filler machine in
  ignore
    (Engine.spawn engine ~core:0 ~name:"t" (fun () ->
         for _ = 1 to 12 do
           Coretime.with_op ct ~write:true addr (fun () -> scan addr obj_size);
           scan fill filler_size
         done));
  Engine.run engine;
  Alcotest.(check bool) "written object gets scheduled" true
    (obj.Coretime.Object_table.home <> None)

let test_ownership_accounting () =
  let machine, engine, ct = make () in
  let mem = Machine.memory machine in
  let mk pid name =
    let ext = Memsys.alloc mem ~name ~size:65536 in
    ignore (Coretime.register ct ~pid ~base:ext.Memsys.base ~size:65536 ~name ());
    ext.Memsys.base
  in
  let a = mk 1 "a" and b = mk 2 "b" in
  ignore
    (Engine.spawn engine ~core:0 ~name:"t" (fun () ->
         for _ = 1 to 6 do
           Coretime.with_op ct a (fun () -> Api.compute 3000)
         done;
         for _ = 1 to 2 do
           Coretime.with_op ct b (fun () -> Api.compute 3000)
         done));
  Engine.run engine;
  let own = Coretime.ownership ct in
  Alcotest.(check int) "pid1 ops" 6 (Coretime.Ownership.ops own ~pid:1);
  Alcotest.(check int) "pid2 ops" 2 (Coretime.Ownership.ops own ~pid:2);
  Alcotest.(check (list int)) "pids" [ 1; 2 ] (Coretime.Ownership.pids own);
  let s1 = Coretime.Ownership.share own ~pid:1 in
  Alcotest.(check bool) "pid1 used about 3/4 of accounted time" true
    (s1 > 0.70 && s1 < 0.80)

let test_op_shipping_path () =
  let policy =
    { Coretime.Policy.default with Coretime.Policy.op_shipping = true }
  in
  let machine, engine, ct = make ~policy () in
  let addr, obj = big_object ct machine "obj" in
  Coretime.Object_table.assign (Coretime.table ct) obj 7;
  let exec_core = ref (-1) and back = ref (-1) and cost = ref 0 in
  ignore
    (Engine.spawn engine ~core:2 ~name:"t" (fun () ->
         let t0 = Api.now () in
         Coretime.with_op ct addr (fun () ->
             exec_core := Api.current_core ());
         back := Api.current_core ();
         cost := Api.now () - t0));
  Engine.run engine;
  Alcotest.(check int) "shipped to the home core" 7 !exec_core;
  Alcotest.(check int) "and back" 2 !back;
  Alcotest.(check bool) "round trip far cheaper than two migrations" true
    (!cost < Config.migration_cycles Config.amd16);
  Alcotest.(check int) "counted as an op migration" 1
    (Coretime.stats ct).Coretime.op_migrations

let test_policy_validation () =
  let machine = Machine.create Config.amd16 in
  let engine = Engine.create machine in
  Alcotest.(check bool) "bad policy rejected" true
    (match
       Coretime.create
         ~policy:{ Coretime.Policy.default with Coretime.Policy.ewma_alpha = 2.0 }
         engine ()
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "ct_end without ct_start" `Quick test_ct_requires_thread_frame;
    Alcotest.test_case "unregistered addresses run locally" `Quick test_unregistered_address_is_harmless;
    Alcotest.test_case "expensive objects get promoted" `Quick test_promotion_after_expensive_ops;
    Alcotest.test_case "cache-resident objects stay unscheduled" `Quick test_no_promotion_when_cache_resident;
    Alcotest.test_case "operations migrate to the object" `Quick test_operations_migrate_to_home;
    Alcotest.test_case "migrate_back=false leaves the thread" `Quick test_no_migrate_back_policy;
    Alcotest.test_case "baseline is transparent" `Quick test_baseline_never_migrates;
    Alcotest.test_case "nested regions feed clustering" `Quick test_nested_regions_feed_clustering;
    Alcotest.test_case "replication policy leaves hot read-only objects" `Quick test_replication_policy_skips_promotion;
    Alcotest.test_case "writes defeat replication" `Quick test_write_ops_disable_replication;
    Alcotest.test_case "ownership accounting" `Quick test_ownership_accounting;
    Alcotest.test_case "operation shipping (active messages)" `Quick test_op_shipping_path;
    Alcotest.test_case "policy validation" `Quick test_policy_validation;
  ]
