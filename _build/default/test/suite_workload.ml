open O2_simcore
open O2_workload

(* ---------- rng ---------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  let take r = List.init 20 (fun _ -> Rng.int r ~bound:1000) in
  Alcotest.(check (list int)) "same seed, same stream" (take a) (take b);
  let c = Rng.create ~seed:8 in
  Alcotest.(check bool) "different seed differs" true (take a <> take c)

let test_rng_bounds () =
  let r = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = Rng.int r ~bound:17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v;
    let f = Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of bounds: %f" f
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r ~bound:0))

let test_rng_split_independent () =
  let r = Rng.create ~seed:3 in
  let s = Rng.split r in
  Alcotest.(check bool) "streams differ" true
    (List.init 10 (fun _ -> Rng.next r) <> List.init 10 (fun _ -> Rng.next s))

let test_rng_shuffle_is_permutation () =
  let r = Rng.create ~seed:5 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  Alcotest.(check (list int)) "same elements" (List.init 50 Fun.id)
    (List.sort compare (Array.to_list a));
  Alcotest.(check bool) "actually shuffled" true (a <> Array.init 50 Fun.id)

(* ---------- dist ---------- *)

let test_uniform_support () =
  let d = Dist.uniform 10 in
  let r = Rng.create ~seed:2 in
  let seen = Array.make 10 0 in
  for _ = 1 to 2000 do
    let v = Dist.sample d r in
    seen.(v) <- seen.(v) + 1
  done;
  Array.iteri
    (fun i n -> if n = 0 then Alcotest.failf "value %d never drawn" i)
    seen;
  Alcotest.(check (float 1e-9)) "pmf" 0.1 (Dist.pmf d 3)

let test_zipf_skew () =
  let d = Dist.zipf ~n:100 ~s:1.2 in
  Alcotest.(check bool) "rank 0 most popular" true (Dist.pmf d 0 > Dist.pmf d 1);
  Alcotest.(check bool) "monotone" true (Dist.pmf d 10 > Dist.pmf d 50);
  let total = List.fold_left ( +. ) 0.0 (List.init 100 (Dist.pmf d)) in
  Alcotest.(check (float 1e-6)) "pmf sums to 1" 1.0 total;
  let r = Rng.create ~seed:4 in
  let head = ref 0 in
  for _ = 1 to 1000 do
    if Dist.sample d r < 10 then incr head
  done;
  Alcotest.(check bool) "head gets most of the mass" true (!head > 600)

let test_zipf_zero_exponent_is_uniform () =
  let d = Dist.zipf ~n:10 ~s:0.0 in
  Alcotest.(check (float 1e-9)) "flat" (Dist.pmf d 0) (Dist.pmf d 9)

let test_fixed () =
  let d = Dist.fixed 3 in
  let r = Rng.create ~seed:9 in
  Alcotest.(check int) "always the same" 3 (Dist.sample d r);
  Alcotest.(check (float 1e-9)) "pmf one" 1.0 (Dist.pmf d 3)

(* ---------- dir workload ---------- *)

let build ?(spec = { Dir_workload.default_spec with dirs = 8 }) () =
  let machine = Machine.create Config.amd16 in
  let engine = O2_runtime.Engine.create machine in
  let ct = Coretime.create ~policy:Coretime.Policy.baseline engine () in
  (engine, Dir_workload.build ct spec)

let test_workload_geometry () =
  let spec = Dir_workload.default_spec in
  (* 1000 entries x 32 bytes, rounded to 4 KB clusters = 32 KB per dir *)
  Alcotest.(check int) "data_kb for 64 dirs" (64 * 32) (Dir_workload.data_kb spec);
  let s = Dir_workload.spec_for_data_kb ~kb:8192 () in
  Alcotest.(check int) "8 MB needs 256 dirs" 256 s.Dir_workload.dirs;
  let tiny = Dir_workload.spec_for_data_kb ~kb:1 () in
  Alcotest.(check int) "at least one dir" 1 tiny.Dir_workload.dirs

let test_workload_builds_valid_volume () =
  let _, w = build () in
  let report = O2_fs.Fat_check.check (Dir_workload.fs w) in
  Alcotest.(check bool) "fsck clean" true (O2_fs.Fat_check.ok report);
  Alcotest.(check int) "8 dirs + root" 9 report.O2_fs.Fat_check.directories;
  Alcotest.(check int) "8000 files" 8000 report.O2_fs.Fat_check.files;
  let spec = Dir_workload.spec w in
  let content = spec.Dir_workload.entries_per_dir * 32 in
  let rounded =
    (content + spec.Dir_workload.cluster_bytes - 1)
    / spec.Dir_workload.cluster_bytes * spec.Dir_workload.cluster_bytes
  in
  Alcotest.(check int) "dir object sized by its cluster chain" rounded
    (Dir_workload.dir_object w 0).Coretime.Object_table.size

let test_one_lookup_resolves () =
  let engine, w = build () in
  let ok = ref false in
  let rng = Rng.create ~seed:11 in
  ignore
    (O2_runtime.Engine.spawn engine ~core:0 ~name:"t" (fun () ->
         ok := Dir_workload.one_lookup w rng));
  O2_runtime.Engine.run engine;
  Alcotest.(check bool) "resolved" true !ok;
  Alcotest.(check int) "counted" 1 (Dir_workload.lookups_done w)

let test_set_active_clamps () =
  let _, w = build () in
  Dir_workload.set_active w 100;
  Alcotest.(check int) "clamped high" 8 (Dir_workload.active w);
  Dir_workload.set_active w 0;
  Alcotest.(check int) "clamped low" 1 (Dir_workload.active w);
  Dir_workload.set_active w 3;
  Alcotest.(check int) "set" 3 (Dir_workload.active w)

let test_active_prefix_respected () =
  (* per-object op counts are only maintained when CoreTime is enabled *)
  let machine = Machine.create Config.amd16 in
  let engine = O2_runtime.Engine.create machine in
  let ct = Coretime.create ~policy:Coretime.Policy.default engine () in
  let w = Dir_workload.build ct { Dir_workload.default_spec with dirs = 8 } in
  Dir_workload.set_active w 2;
  let rng = Rng.create ~seed:13 in
  ignore
    (O2_runtime.Engine.spawn engine ~core:0 ~name:"t" (fun () ->
         for _ = 1 to 50 do
           ignore (Dir_workload.one_lookup w rng)
         done));
  O2_runtime.Engine.run engine;
  (* only the first two directories' objects saw operations *)
  for i = 0 to 7 do
    let ops = (Dir_workload.dir_object w i).Coretime.Object_table.ops_total in
    if i < 2 then Alcotest.(check bool) "active dir used" true (ops > 0)
    else Alcotest.(check int) "inactive dir untouched" 0 ops
  done

let test_phase_square_wave () =
  let engine, w = build () in
  Phase.oscillate_active engine w ~period:1000 ~divisor:4;
  ignore
    (O2_runtime.Engine.spawn engine ~core:0 ~name:"t" (fun () ->
         O2_runtime.Api.compute 5000));
  O2_runtime.Engine.run ~until:1500 engine;
  Alcotest.(check int) "low phase: 8/4 = 2" 2 (Dir_workload.active w);
  O2_runtime.Engine.run ~until:2500 engine;
  Alcotest.(check int) "high phase again" 8 (Dir_workload.active w)

(* ---------- kv store ---------- *)

let kv () =
  let machine = Machine.create Config.amd16 in
  let engine = O2_runtime.Engine.create machine in
  let ct = Coretime.create ~policy:Coretime.Policy.baseline engine () in
  (engine, Kv_store.create ct ~name:"kv" ~buckets:16 ~slots_per_bucket:8 ())

let in_thread engine f =
  let result = ref None in
  ignore
    (O2_runtime.Engine.spawn engine ~core:0 ~name:"t" (fun () ->
         result := Some (f ())));
  O2_runtime.Engine.run engine;
  Option.get !result

let test_kv_put_get_delete () =
  let engine, kv = kv () in
  let outcome =
    in_thread engine (fun () ->
        let ok1 = Kv_store.put kv ~key:1 ~value:10 in
        let ok2 = Kv_store.put kv ~key:2 ~value:20 in
        let v1 = Kv_store.get kv ~key:1 in
        let missing = Kv_store.get kv ~key:99 in
        let updated = Kv_store.put kv ~key:1 ~value:11 in
        let v1' = Kv_store.get kv ~key:1 in
        let deleted = Kv_store.delete kv ~key:2 in
        let v2 = Kv_store.get kv ~key:2 in
        (ok1, ok2, v1, missing, updated, v1', deleted, v2))
  in
  Alcotest.(check bool) "behaviour" true
    (outcome = (true, true, Some 10, None, true, Some 11, true, None));
  Alcotest.(check int) "size" 1 (Kv_store.size kv)

let test_kv_bucket_overflow () =
  let engine, kv = kv () in
  let full =
    in_thread engine (fun () ->
        (* hammer keys that share a bucket until it fills *)
        let base = 5 in
        let bucket = Kv_store.bucket_of_key kv base in
        let same_bucket k = Kv_store.bucket_of_key kv k = bucket in
        let keys =
          List.filter same_bucket (List.init 4000 Fun.id)
        in
        List.filter_map
          (fun k -> if Kv_store.put kv ~key:k ~value:k then None else Some k)
          keys)
  in
  Alcotest.(check bool) "eventually rejects" true (List.length full > 0)

(* Model-based property: the kv store agrees with a Hashtbl under random
   put/get/delete sequences (performed from inside a simulated thread). *)
let prop_kv_matches_map =
  let op_gen =
    QCheck2.Gen.(
      oneof
        [
          map2 (fun k v -> `Put (k, v)) (int_bound 60) (int_bound 1000);
          map (fun k -> `Get k) (int_bound 60);
          map (fun k -> `Delete k) (int_bound 60);
        ])
  in
  QCheck2.Test.make ~name:"kv store behaves like a map" ~count:40
    QCheck2.Gen.(list_size (int_bound 150) op_gen)
    (fun ops ->
      let engine, store = kv () in
      let model : (int, int) Hashtbl.t = Hashtbl.create 16 in
      in_thread engine (fun () ->
          List.for_all
            (fun op ->
              match op with
              | `Put (k, v) ->
                  if Kv_store.put store ~key:k ~value:v then begin
                    Hashtbl.replace model k v;
                    true
                  end
                  else true (* bucket full: store may refuse; model unchanged *)
              | `Get k -> Kv_store.get store ~key:k = Hashtbl.find_opt model k
              | `Delete k ->
                  let expected = Hashtbl.mem model k in
                  Hashtbl.remove model k;
                  Kv_store.delete store ~key:k = expected)
            ops)
      && Kv_store.size store = Hashtbl.length model)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_is_permutation;
    Alcotest.test_case "uniform covers its support" `Quick test_uniform_support;
    Alcotest.test_case "zipf is skewed and normalised" `Quick test_zipf_skew;
    Alcotest.test_case "zipf s=0 is uniform" `Quick test_zipf_zero_exponent_is_uniform;
    Alcotest.test_case "fixed distribution" `Quick test_fixed;
    Alcotest.test_case "workload geometry (paper sizes)" `Quick test_workload_geometry;
    Alcotest.test_case "workload builds a valid volume" `Quick test_workload_builds_valid_volume;
    Alcotest.test_case "one_lookup resolves and counts" `Quick test_one_lookup_resolves;
    Alcotest.test_case "set_active clamps" `Quick test_set_active_clamps;
    Alcotest.test_case "active prefix respected" `Quick test_active_prefix_respected;
    Alcotest.test_case "phase square wave flips the set" `Quick test_phase_square_wave;
    Alcotest.test_case "kv put/get/delete" `Quick test_kv_put_get_delete;
    Alcotest.test_case "kv bucket overflow" `Quick test_kv_bucket_overflow;
    QCheck_alcotest.to_alcotest prop_kv_matches_map;
  ]
