open O2_simcore
open O2_workload

let make () =
  let machine = Machine.create Config.amd16 in
  let engine = O2_runtime.Engine.create machine in
  let ct = Coretime.create ~policy:Coretime.Policy.baseline engine () in
  (engine, ct)

let sorted_keys n = Array.init n (fun i -> (i * 3) + 1)

let load ?(fanout = 16) ct n =
  let t = Btree_store.create ct ~name:"t" ~fanout () in
  Btree_store.bulk_load t ~keys:(sorted_keys n) ~value_of:(fun k -> k * 10);
  t

let in_thread engine f =
  let result = ref None in
  ignore
    (O2_runtime.Engine.spawn engine ~core:0 ~name:"t" (fun () ->
         result := Some (f ())));
  O2_runtime.Engine.run engine;
  Option.get !result

let test_bulk_load_structure () =
  let _, ct = make () in
  let t = load ct 500 in
  Alcotest.(check bool) "invariants hold" true (Btree_store.check t = Ok ());
  Alcotest.(check int) "keys counted" 500 (Btree_store.key_count t);
  Alcotest.(check bool) "multiple levels" true (Btree_store.height t >= 2);
  Alcotest.(check bool) "leaves + internals" true
    (Btree_store.node_count t > Btree_store.leaf_count t)

let test_lookup_hits_and_misses () =
  let engine, ct = make () in
  let t = load ct 500 in
  let hits, misses =
    in_thread engine (fun () ->
        let hits = ref 0 and misses = ref 0 in
        for i = 0 to 499 do
          match Btree_store.lookup t ((i * 3) + 1) with
          | Some v when v = ((i * 3) + 1) * 10 -> incr hits
          | Some _ | None -> incr misses
        done;
        (* keys congruent to 0 mod 3 are absent *)
        for i = 0 to 99 do
          match Btree_store.lookup t (i * 3) with
          | None -> ()
          | Some _ -> incr misses
        done;
        (!hits, !misses))
  in
  Alcotest.(check int) "all present keys found with right values" 500 hits;
  Alcotest.(check int) "no false hits" 0 misses

let test_lookup_charges_cycles () =
  let engine, ct = make () in
  let t = load ct 2000 in
  ignore
    (in_thread engine (fun () -> Btree_store.lookup t 1));
  Alcotest.(check bool) "descent cost charged" true
    (O2_runtime.Engine.core_clock engine 0 > 0)

let test_insert_update_and_new () =
  let engine, ct = make () in
  let t = load ct 100 in
  let r =
    in_thread engine (fun () ->
        let updated = Btree_store.insert t ~key:4 ~value:999 in
        let v = Btree_store.lookup t 4 in
        (* 5 is absent (not 1 mod 3): lands in some leaf with slack *)
        let added = Btree_store.insert t ~key:5 ~value:55 in
        let v5 = Btree_store.lookup t 5 in
        (updated, v, added, v5))
  in
  Alcotest.(check bool) "update + insert behaviour" true
    (r = (true, Some 999, true, Some 55));
  Alcotest.(check bool) "still well-formed" true (Btree_store.check t = Ok ());
  Alcotest.(check int) "key count grew" 101 (Btree_store.key_count t)

let test_insert_full_leaf_rejected () =
  let engine, ct = make () in
  let t = Btree_store.create ct ~name:"t" ~fanout:4 () in
  (* fanout 4, 70% fill = 2 per leaf; stuffing one leaf's key range *)
  Btree_store.bulk_load t ~keys:[| 10; 20; 30; 40 |] ~value_of:Fun.id;
  let outcome =
    in_thread engine (fun () ->
        let a = Btree_store.insert t ~key:11 ~value:1 in
        let b = Btree_store.insert t ~key:12 ~value:2 in
        let c = Btree_store.insert t ~key:13 ~value:3 in
        (a, b, c))
  in
  (match outcome with
  | true, true, false -> ()
  | a, b, c -> Alcotest.failf "expected fill then reject, got %b %b %b" a b c);
  Alcotest.(check bool) "tree intact" true (Btree_store.check t = Ok ())

let test_bulk_load_validation () =
  let _, ct = make () in
  let t = Btree_store.create ct ~name:"t" ~fanout:8 () in
  Alcotest.(check bool) "unsorted rejected" true
    (match Btree_store.bulk_load t ~keys:[| 3; 1 |] ~value_of:Fun.id with
    | () -> false
    | exception Invalid_argument _ -> true);
  Btree_store.bulk_load t ~keys:[| 1; 2 |] ~value_of:Fun.id;
  Alcotest.(check bool) "double load rejected" true
    (match Btree_store.bulk_load t ~keys:[| 5 |] ~value_of:Fun.id with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_nodes_registered_as_objects () =
  let _, ct = make () in
  let t = load ct 300 in
  Alcotest.(check int) "every node is a CoreTime object"
    (Btree_store.node_count t)
    (Coretime.Object_table.size (Coretime.table ct))

let prop_lookup_matches_membership =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"btree lookup = membership in loaded keys" ~count:25
       QCheck2.Gen.(
         pair (int_range 1 400) (list_size (int_bound 40) (int_bound 2000)))
       (fun (n, probes) ->
         let _, ct = make () in
         let machine = Coretime.engine ct in
         let t = load ct n in
         let keyset = Array.to_list (sorted_keys n) in
         let ok = ref true in
         ignore
           (O2_runtime.Engine.spawn machine ~core:0 ~name:"t" (fun () ->
                List.iter
                  (fun p ->
                    let expected =
                      if List.mem p keyset then Some (p * 10) else None
                    in
                    if Btree_store.lookup t p <> expected then ok := false)
                  probes));
         O2_runtime.Engine.run machine;
         !ok))

let suite =
  [
    Alcotest.test_case "bulk load builds a valid tree" `Quick test_bulk_load_structure;
    Alcotest.test_case "lookups hit and miss correctly" `Quick test_lookup_hits_and_misses;
    Alcotest.test_case "lookups cost cycles" `Quick test_lookup_charges_cycles;
    Alcotest.test_case "insert updates and adds" `Quick test_insert_update_and_new;
    Alcotest.test_case "full leaves reject inserts" `Quick test_insert_full_leaf_rejected;
    Alcotest.test_case "bulk load validation" `Quick test_bulk_load_validation;
    Alcotest.test_case "nodes are CoreTime objects" `Quick test_nodes_registered_as_objects;
    prop_lookup_matches_membership;
  ]
