open Coretime

let test_coaccess_counts () =
  let c = Clustering.create () in
  Clustering.note_coaccess c 1 2;
  Clustering.note_coaccess c 2 1;
  Clustering.note_coaccess c 1 3;
  Alcotest.(check int) "order-insensitive" 2 (Clustering.coaccess_count c 1 2);
  Alcotest.(check int) "other pair" 1 (Clustering.coaccess_count c 3 1);
  Alcotest.(check int) "unknown pair" 0 (Clustering.coaccess_count c 4 5);
  Alcotest.(check int) "pairs tracked" 2 (Clustering.pairs_tracked c)

let test_self_coaccess_ignored () =
  let c = Clustering.create () in
  Clustering.note_coaccess c 7 7;
  Alcotest.(check int) "no self pair" 0 (Clustering.pairs_tracked c)

let test_partners_sorted () =
  let c = Clustering.create () in
  for _ = 1 to 3 do Clustering.note_coaccess c 1 2 done;
  Clustering.note_coaccess c 1 3;
  for _ = 1 to 2 do Clustering.note_coaccess c 1 4 done;
  Alcotest.(check (list (pair int int))) "most frequent first"
    [ (2, 3); (4, 2); (3, 1) ]
    (Clustering.partners c 1)

let test_preferred_core () =
  let c = Clustering.create () in
  let t = Object_table.create ~cores:4 ~budget_per_core:1000 in
  let a = Object_table.register t ~base:1 ~size:300 ~name:"a" () in
  let b = Object_table.register t ~base:2 ~size:300 ~name:"b" () in
  for _ = 1 to 10 do Clustering.note_coaccess c 1 2 done;
  Alcotest.(check (option int)) "partner unassigned: no preference" None
    (Clustering.preferred_core c t ~min_coaccess:5 b);
  Object_table.assign t a 2;
  Alcotest.(check (option int)) "follow the partner" (Some 2)
    (Clustering.preferred_core c t ~min_coaccess:5 b);
  Alcotest.(check (option int)) "threshold not met" None
    (Clustering.preferred_core c t ~min_coaccess:50 b);
  (* partner's core has no room *)
  let filler = Object_table.register t ~base:3 ~size:600 ~name:"fill" () in
  Object_table.assign t filler 2;
  Alcotest.(check (option int)) "no room on the partner's core" None
    (Clustering.preferred_core c t ~min_coaccess:5 b)

let test_ownership_shares () =
  let o = Ownership.create () in
  Alcotest.(check (float 0.0001)) "empty share" 0.0 (Ownership.share o ~pid:1);
  Ownership.charge o ~pid:1 ~cycles:300;
  Ownership.charge o ~pid:2 ~cycles:100;
  Ownership.charge o ~pid:1 ~cycles:100;
  Alcotest.(check int) "ops" 2 (Ownership.ops o ~pid:1);
  Alcotest.(check int) "cycles" 400 (Ownership.cycles o ~pid:1);
  Alcotest.(check int) "total" 500 (Ownership.total_cycles o);
  Alcotest.(check (float 0.0001)) "share" 0.8 (Ownership.share o ~pid:1);
  Alcotest.(check (list int)) "pids sorted" [ 1; 2 ] (Ownership.pids o)

let prop_shares_sum_to_one =
  QCheck2.Test.make ~name:"ownership shares sum to 1" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (pair (int_bound 5) (int_range 1 1000)))
    (fun charges ->
      let o = Ownership.create () in
      List.iter (fun (pid, cycles) -> Ownership.charge o ~pid ~cycles) charges;
      let total =
        List.fold_left (fun acc pid -> acc +. Ownership.share o ~pid) 0.0
          (Ownership.pids o)
      in
      abs_float (total -. 1.0) < 1e-9)

let suite =
  [
    Alcotest.test_case "co-access counting" `Quick test_coaccess_counts;
    Alcotest.test_case "self pairs ignored" `Quick test_self_coaccess_ignored;
    Alcotest.test_case "partners sorted by frequency" `Quick test_partners_sorted;
    Alcotest.test_case "preferred core follows assigned partner" `Quick test_preferred_core;
    Alcotest.test_case "ownership shares" `Quick test_ownership_shares;
    QCheck_alcotest.to_alcotest prop_shares_sum_to_one;
  ]
