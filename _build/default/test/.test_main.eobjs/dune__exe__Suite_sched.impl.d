test/suite_sched.ml: Alcotest Array List O2_sched
