test/suite_spinlock.ml: Alcotest Api Config Counters Engine List Machine O2_runtime O2_simcore Printf Spinlock
