test/suite_machine.ml: Alcotest Cache Config Counters List Machine Memsys O2_simcore QCheck2 QCheck_alcotest Result
