test/suite_stats.ml: Alcotest Ascii_plot Csv List O2_stats Series String Summary Table
