test/suite_object_table.ml: Alcotest Array Coretime List Object_table QCheck2 QCheck_alcotest Result
