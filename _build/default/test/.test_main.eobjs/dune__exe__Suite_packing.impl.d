test/suite_packing.ml: Alcotest Array Cache_packing Coretime List Policy QCheck2 QCheck_alcotest
