test/suite_fat.ml: Alcotest Bytes Config Fat Fat_check Fat_dir Fat_image Fat_name Fat_types Hashtbl List Machine Memsys O2_fs O2_runtime O2_simcore Option Printf QCheck2 QCheck_alcotest Result String
