test/suite_config.ml: Alcotest Config List O2_simcore QCheck2 QCheck_alcotest Result Topology
