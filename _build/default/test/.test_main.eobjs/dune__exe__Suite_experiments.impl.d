test/suite_experiments.ml: Alcotest Coretime Fig2 Format Harness Latency_table List O2_experiments O2_workload Printf Registry Result
