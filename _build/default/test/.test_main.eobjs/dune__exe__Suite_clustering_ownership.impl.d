test/suite_clustering_ownership.ml: Alcotest Clustering Coretime List Object_table Ownership QCheck2 QCheck_alcotest
