test/suite_btree.ml: Alcotest Array Btree_store Config Coretime Fun List Machine O2_runtime O2_simcore O2_workload Option QCheck2 QCheck_alcotest
