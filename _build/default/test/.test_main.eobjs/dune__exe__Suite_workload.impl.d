test/suite_workload.ml: Alcotest Array Config Coretime Dir_workload Dist Fun Hashtbl Kv_store List Machine O2_fs O2_runtime O2_simcore O2_workload Option Phase QCheck2 QCheck_alcotest Rng
