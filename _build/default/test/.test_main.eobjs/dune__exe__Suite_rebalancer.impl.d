test/suite_rebalancer.ml: Alcotest Array Config Coretime Counters List Machine O2_simcore Object_table Policy Printf Rebalancer Result
