test/suite_engine.ml: Alcotest Api Array Buffer Config Coretime Counters Engine Machine Memsys O2_runtime O2_simcore O2_workload
