test/suite_coretime.ml: Alcotest Api Config Coretime Counters Engine Machine Memsys O2_runtime O2_simcore
