test/suite_counters.ml: Alcotest Array Counters O2_simcore
