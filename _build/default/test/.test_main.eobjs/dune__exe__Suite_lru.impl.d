test/suite_lru.ml: Alcotest List Lru O2_simcore QCheck2 QCheck_alcotest Result
