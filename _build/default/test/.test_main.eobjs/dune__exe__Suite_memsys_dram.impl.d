test/suite_memsys_dram.ml: Alcotest Config Dram Memsys O2_simcore Option Topology
