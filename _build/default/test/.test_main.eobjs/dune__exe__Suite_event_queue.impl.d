test/suite_event_queue.ml: Alcotest Event_queue List O2_runtime Option QCheck2 QCheck_alcotest
