open Coretime

let table () = Object_table.create ~cores:4 ~budget_per_core:1000

let test_register_and_find () =
  let t = table () in
  let o = Object_table.register t ~base:0x1000 ~size:100 ~name:"a" () in
  Alcotest.(check bool) "found by base" true (Object_table.find t 0x1000 = Some o);
  Alcotest.(check bool) "miss" true (Object_table.find t 0x2000 = None);
  Alcotest.(check int) "one object" 1 (Object_table.size t);
  Alcotest.(check bool) "unassigned" true (o.Object_table.home = None)

let test_register_rejects () =
  let t = table () in
  ignore (Object_table.register t ~base:0x1000 ~size:100 ~name:"a" ());
  Alcotest.(check bool) "duplicate base" true
    (match Object_table.register t ~base:0x1000 ~size:1 ~name:"b" () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "zero size" true
    (match Object_table.register t ~base:0x3000 ~size:0 ~name:"c" () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_assign_accounting () =
  let t = table () in
  let a = Object_table.register t ~base:1 ~size:400 ~name:"a" () in
  let b = Object_table.register t ~base:2 ~size:500 ~name:"b" () in
  Object_table.assign t a 0;
  Object_table.assign t b 0;
  Alcotest.(check int) "used" 900 (Object_table.used t 0);
  Alcotest.(check int) "free" 100 (Object_table.free_space t 0);
  Alcotest.(check int) "assigned count" 2 (Object_table.assigned_count t);
  (* moving updates both cores *)
  Object_table.assign t b 2;
  Alcotest.(check int) "source released" 400 (Object_table.used t 0);
  Alcotest.(check int) "destination charged" 500 (Object_table.used t 2);
  Object_table.unassign t a;
  Object_table.unassign t a;
  Alcotest.(check int) "unassign idempotent" 0 (Object_table.used t 0);
  Alcotest.(check bool) "accounting invariant" true
    (Result.is_ok (Object_table.check_accounting t))

let test_fits_and_place () =
  let t = table () in
  let big = Object_table.register t ~base:1 ~size:900 ~name:"big" () in
  let small = Object_table.register t ~base:2 ~size:200 ~name:"small" () in
  Object_table.assign t big 0;
  Alcotest.(check bool) "small does not fit core 0" false
    (Object_table.fits t ~core:0 small);
  Alcotest.(check bool) "small fits core 1" true (Object_table.fits t ~core:1 small);
  Alcotest.(check bool) "can place somewhere" true (Object_table.can_place t small);
  Alcotest.(check (float 0.001)) "occupancy" 0.225 (Object_table.occupancy t)

let test_objects_in_registration_order () =
  let t = table () in
  let names = [ "x"; "y"; "z" ] in
  List.iteri
    (fun i n -> ignore (Object_table.register t ~base:i ~size:1 ~name:n ()))
    names;
  Alcotest.(check (list string)) "order kept" names
    (List.map (fun o -> o.Object_table.name) (Object_table.objects t))

let prop_accounting_invariant =
  QCheck2.Test.make ~name:"budget accounting matches assignments" ~count:200
    QCheck2.Gen.(list_size (int_bound 100) (pair (int_bound 19) (int_bound 4)))
    (fun moves ->
      let t = Object_table.create ~cores:4 ~budget_per_core:100000 in
      let objs =
        Array.init 20 (fun i ->
            Object_table.register t ~base:i ~size:((i + 1) * 7) ~name:"o" ())
      in
      List.iter
        (fun (oi, core) ->
          if core = 4 then Object_table.unassign t objs.(oi)
          else Object_table.assign t objs.(oi) core)
        moves;
      Result.is_ok (Object_table.check_accounting t))

let suite =
  [
    Alcotest.test_case "register and find" `Quick test_register_and_find;
    Alcotest.test_case "register rejects bad input" `Quick test_register_rejects;
    Alcotest.test_case "assignment accounting" `Quick test_assign_accounting;
    Alcotest.test_case "fits / can_place / occupancy" `Quick test_fits_and_place;
    Alcotest.test_case "objects keep registration order" `Quick test_objects_in_registration_order;
    QCheck_alcotest.to_alcotest prop_accounting_invariant;
  ]
