(* The cache-hierarchy access path: latencies, movement between levels,
   victim-L3 exclusivity, coherence invalidations, capacity, and the
   presence-directory consistency invariant under random traffic. *)

open O2_simcore

let machine () = Machine.create Config.amd16

let probe_addr m =
  (Memsys.alloc (Machine.memory m) ~name:"probe" ~size:64).Memsys.base

let read m ~core addr = Machine.read m ~core ~now:0 ~addr ~len:8
let write m ~core addr = Machine.write m ~core ~now:0 ~addr ~len:8

let test_l1_hit () =
  let m = machine () in
  let addr = probe_addr m in
  ignore (read m ~core:0 addr);
  Alcotest.(check int) "second read hits L1" 3 (read m ~core:0 addr)

let test_l2_hit () =
  let m = machine () in
  let addr = probe_addr m in
  Machine.place m ~core:0 ~addr ~l1:false ~l2:true ~l3:false;
  Alcotest.(check int) "L2 hit" 14 (read m ~core:0 addr);
  Alcotest.(check int) "fills L1" 3 (read m ~core:0 addr)

let test_l3_hit_is_exclusive () =
  let m = machine () in
  let addr = probe_addr m in
  Machine.place m ~core:0 ~addr ~l1:false ~l2:false ~l3:true;
  Alcotest.(check int) "L3 hit" 75 (read m ~core:0 addr);
  (* victim cache: the line moved into the private hierarchy *)
  Alcotest.(check bool) "line left the L3" false
    (Cache.contains (Machine.l3 m ~chip:0) (addr / 64));
  Alcotest.(check bool) "line now private" true
    (Machine.line_resident m ~core:0 ~addr)

let test_l2_eviction_goes_to_l3 () =
  let m = Machine.create Config.small4 in
  let mem = Machine.memory m in
  (* small4 L1 = 1 KB (16 lines), L2 = 4 KB (64 lines): stream enough
     lines through core 0 to evict the first one from both. *)
  let first = (Memsys.alloc mem ~name:"first" ~size:64).Memsys.base in
  ignore (read m ~core:0 first);
  for _ = 1 to 80 do
    let a = (Memsys.alloc mem ~name:"filler" ~size:64).Memsys.base in
    ignore (read m ~core:0 a)
  done;
  Alcotest.(check bool) "evicted from private caches" false
    (Machine.line_resident m ~core:0 ~addr:first);
  Alcotest.(check bool) "victim landed in the chip L3" true
    (Cache.contains (Machine.l3 m ~chip:0) (first / 64));
  Alcotest.(check int) "and is an L3 hit to re-read" 75 (read m ~core:0 first)

let test_remote_fetch_costs () =
  let m = machine () in
  let addr = probe_addr m in
  Machine.place m ~core:1 ~addr ~l1:false ~l2:true ~l3:false;
  Alcotest.(check int) "same chip remote" 127 (read m ~core:0 addr);
  let m = machine () in
  let addr = probe_addr m in
  Machine.place m ~core:4 ~addr ~l1:false ~l2:true ~l3:false;
  Alcotest.(check int) "one hop remote" 187 (read m ~core:0 addr);
  let m = machine () in
  let addr = probe_addr m in
  Machine.place m ~core:15 ~addr ~l1:false ~l2:true ~l3:false;
  Alcotest.(check int) "two hop remote" 247 (read m ~core:0 addr)

let test_nearest_copy_wins () =
  let m = machine () in
  let addr = probe_addr m in
  Machine.place m ~core:15 ~addr ~l1:false ~l2:true ~l3:false;
  Machine.place m ~core:1 ~addr ~l1:false ~l2:true ~l3:false;
  Alcotest.(check int) "chooses the same-chip copy" 127 (read m ~core:0 addr)

let test_write_invalidates () =
  let m = machine () in
  let addr = probe_addr m in
  ignore (read m ~core:1 addr);
  ignore (read m ~core:5 addr);
  let cost = write m ~core:0 addr in
  Alcotest.(check bool) "cost includes invalidation" true
    (cost >= Config.amd16.Config.invalidate_cycles);
  Alcotest.(check bool) "core 1 lost its copy" false
    (Machine.line_resident m ~core:1 ~addr);
  Alcotest.(check bool) "core 5 lost its copy" false
    (Machine.line_resident m ~core:5 ~addr);
  Alcotest.(check bool) "writer has it" true
    (Machine.line_resident m ~core:0 ~addr);
  Alcotest.(check int) "writer then hits L1" 3 (read m ~core:0 addr)

let test_dram_load_and_counters () =
  let m = machine () in
  let addr = probe_addr m in
  let cost = read m ~core:0 addr in
  Alcotest.(check bool) "cold read is a DRAM load"
    true
    (cost >= Config.amd16.Config.dram_latency);
  let c = Machine.counters m 0 in
  Alcotest.(check int) "dram counter" 1 c.Counters.dram_loads;
  Alcotest.(check int) "load counter" 1 c.Counters.loads

let test_multi_line_read () =
  let m = machine () in
  let ext = Memsys.alloc (Machine.memory m) ~name:"buf" ~size:4096 in
  ignore (Machine.read m ~core:0 ~now:0 ~addr:ext.Memsys.base ~len:4096);
  let c = Machine.counters m 0 in
  Alcotest.(check int) "64 lines loaded" 64 c.Counters.loads;
  (* second scan: everything is local now *)
  let cost = Machine.read m ~core:0 ~now:100000 ~addr:ext.Memsys.base ~len:4096 in
  Alcotest.(check int) "warm scan costs 64 L1 hits" (64 * 3) cost

let test_flush () =
  let m = machine () in
  let addr = probe_addr m in
  ignore (read m ~core:0 addr);
  Machine.flush_line m ~addr;
  Alcotest.(check bool) "gone" false (Machine.line_resident m ~core:0 ~addr);
  ignore (read m ~core:0 addr);
  Machine.flush_all m;
  Alcotest.(check int) "nothing cached" 0 (Machine.distinct_cached_lines m);
  Alcotest.(check bool) "still consistent" true
    (Result.is_ok (Machine.check_presence_consistency m))

let test_zero_and_negative_len () =
  let m = machine () in
  let addr = probe_addr m in
  Alcotest.(check int) "len 0 read free" 0 (Machine.read m ~core:0 ~now:0 ~addr ~len:0);
  Alcotest.(check int) "len 0 write free" 0 (Machine.write m ~core:0 ~now:0 ~addr ~len:0)

let prop_presence_consistent =
  QCheck2.Test.make ~name:"presence directory consistent under random traffic"
    ~count:60
    QCheck2.Gen.(
      list_size (return 300)
        (triple (int_bound 3) (int_bound 127) bool))
    (fun ops ->
      let m = Machine.create Config.small4 in
      let ext = Memsys.alloc (Machine.memory m) ~name:"arena" ~size:(128 * 64) in
      List.iter
        (fun (core, line, is_write) ->
          let addr = ext.Memsys.base + (line * 64) in
          if is_write then ignore (Machine.write m ~core ~now:0 ~addr ~len:8)
          else ignore (Machine.read m ~core ~now:0 ~addr ~len:8))
        ops;
      Result.is_ok (Machine.check_presence_consistency m))

let test_residency_and_distinct () =
  let m = Machine.create Config.small4 in
  let ext = Memsys.alloc (Machine.memory m) ~name:"obj" ~size:512 in
  ignore (Machine.read m ~core:2 ~now:0 ~addr:ext.Memsys.base ~len:512);
  let where = Machine.object_residency m ext in
  Alcotest.(check bool) "object is somewhere" true (where <> []);
  Alcotest.(check bool) "core 2 L1 holds some of it" true
    (List.exists
       (fun (c, n) -> Cache.level c = Cache.L1 && Cache.owner c = 2 && n > 0)
       where);
  Alcotest.(check int) "8 distinct lines on chip" 8
    (Machine.distinct_cached_lines m)

let suite =
  [
    Alcotest.test_case "L1 hit costs 3" `Quick test_l1_hit;
    Alcotest.test_case "L2 hit costs 14 and fills L1" `Quick test_l2_hit;
    Alcotest.test_case "L3 hit is exclusive (victim cache)" `Quick test_l3_hit_is_exclusive;
    Alcotest.test_case "L2 eviction victims land in L3" `Quick test_l2_eviction_goes_to_l3;
    Alcotest.test_case "remote fetch costs by distance" `Quick test_remote_fetch_costs;
    Alcotest.test_case "nearest cached copy is used" `Quick test_nearest_copy_wins;
    Alcotest.test_case "writes invalidate remote copies" `Quick test_write_invalidates;
    Alcotest.test_case "cold loads come from DRAM" `Quick test_dram_load_and_counters;
    Alcotest.test_case "multi-line scans" `Quick test_multi_line_read;
    Alcotest.test_case "flush" `Quick test_flush;
    Alcotest.test_case "zero-length accesses are free" `Quick test_zero_and_negative_len;
    Alcotest.test_case "object residency snapshot" `Quick test_residency_and_distinct;
    QCheck_alcotest.to_alcotest prop_presence_consistent;
  ]
