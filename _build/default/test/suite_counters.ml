open O2_simcore

let test_diff_and_add () =
  let a = Counters.create () in
  a.Counters.loads <- 10;
  a.Counters.dram_loads <- 4;
  a.Counters.busy_cycles <- 100;
  let snap = Counters.copy a in
  a.Counters.loads <- 25;
  a.Counters.dram_loads <- 5;
  a.Counters.busy_cycles <- 180;
  let d = Counters.diff a ~since:snap in
  Alcotest.(check int) "loads delta" 15 d.Counters.loads;
  Alcotest.(check int) "dram delta" 1 d.Counters.dram_loads;
  Alcotest.(check int) "busy delta" 80 d.Counters.busy_cycles;
  let acc = Counters.create () in
  Counters.add_into acc d;
  Counters.add_into acc d;
  Alcotest.(check int) "accumulated" 30 acc.Counters.loads

let test_copy_is_deep () =
  let a = Counters.create () in
  let b = Counters.copy a in
  a.Counters.loads <- 7;
  Alcotest.(check int) "copy unaffected" 0 b.Counters.loads

let test_misses () =
  let a = Counters.create () in
  a.Counters.remote_hits <- 3;
  a.Counters.dram_loads <- 4;
  a.Counters.l2_hits <- 100;
  Alcotest.(check int) "misses = remote + dram" 7 (Counters.misses a)

let test_create_array () =
  let arr = Counters.create_array 4 in
  arr.(0).Counters.loads <- 5;
  Alcotest.(check int) "independent cells" 0 arr.(1).Counters.loads

let suite =
  [
    Alcotest.test_case "diff and accumulate" `Quick test_diff_and_add;
    Alcotest.test_case "copy is deep" `Quick test_copy_is_deep;
    Alcotest.test_case "miss definition" `Quick test_misses;
    Alcotest.test_case "array cells independent" `Quick test_create_array;
  ]
