(* The paper's motivating scenario (Sections 1-2): a web server whose
   bottleneck is resolving file names in a directory tree too large for
   any one core's cache [Veal & Foong 2007]. One thread per core resolves
   random names in an in-memory FAT volume; we run the same binary with
   and without CoreTime and report resolutions per second.

   The CoreTime run carries an O2 flight recorder: it prints the o2top
   latency/counter table and writes a Chrome trace_event JSON next to the
   working directory, loadable at https://ui.perfetto.dev.

     dune exec examples/webserver_lookup.exe [-- data_kb] *)

open O2_simcore
open O2_workload

let trace_path = "webserver_lookup.trace.json"

let run ?(record = false) ~label ~policy ~kb () =
  let machine = Machine.create Config.amd16 in
  let engine = O2_runtime.Engine.create machine in
  let recorder =
    (* Mem events are sampled out (sample_mem:0) so the flight ring keeps
       operation spans, migrations and monitor periods instead of being
       flooded by per-access records. *)
    if record then Some (O2_obs.Recorder.attach ~sample_mem:0 engine)
    else None
  in
  let ct = Coretime.create ~policy engine () in
  let spec = Dir_workload.spec_for_data_kb ~kb () in
  let w = Dir_workload.build ct spec in
  Dir_workload.spawn_threads w;
  (* warm up 20 ms of virtual time, then measure 20 ms *)
  O2_runtime.Engine.run ~until:40_000_000 engine;
  let warm = Dir_workload.lookups_done w in
  O2_runtime.Engine.run ~until:80_000_000 engine;
  let ops = Dir_workload.lookups_done w - warm in
  let resolutions_per_sec =
    float_of_int ops /. Machine.seconds_of_cycles machine 40_000_000
  in
  Printf.printf "%-18s %8.0fk resolutions/s  (%d dirs, %d ops measured)\n%!"
    label
    (resolutions_per_sec /. 1000.)
    spec.Dir_workload.dirs ops;
  (match recorder with
  | None -> ()
  | Some r ->
      Printf.printf "\n-- o2top (%s) --\n%s%!" label
        (O2_obs.O2top.render (O2_obs.Recorder.metrics r));
      O2_obs.Trace_export.write_file r ~path:trace_path;
      Printf.printf
        "trace: %d spans, %d events retained, %d dropped -> %s (open in \
         https://ui.perfetto.dev)\n\n\
         %!"
        (O2_obs.Recorder.span_count r)
        (O2_obs.Recorder.events_retained r)
        (O2_obs.Recorder.events_dropped r)
        trace_path);
  resolutions_per_sec

let () =
  let kb = try int_of_string Sys.argv.(1) with _ -> 8192 in
  Printf.printf "web-server directory workload: %d KB of directory data\n" kb;
  Printf.printf "(per-chip L3 holds 2 MB; total on-chip memory is 16 MB)\n\n";
  let without_ct =
    run ~label:"without CoreTime" ~policy:Coretime.Policy.baseline ~kb ()
  in
  let with_ct =
    run ~record:true ~label:"with CoreTime" ~policy:Coretime.Policy.default
      ~kb ()
  in
  Printf.printf "\nCoreTime speedup: %.2fx\n" (with_ct /. without_ct)
